// Package cost is the analytical DNN-accelerator performance model that
// stands in for MAESTRO (Kwon et al., MICRO 2019) in this reproduction.
//
// Given a hardware configuration (PE hierarchy + bandwidths), a mapping
// (per-level tiles, loop order, spatial dims) and a layer, it computes
// latency, data movement per memory level, minimum buffer requirements and
// energy event counts, using the standard data-centric analysis:
//
//   - per-level temporal trip counts with spatial folding of the
//     parallelized dimension;
//   - tensor refetch counts from the stationarity rule — a tensor is
//     reloaded once per iteration of every loop at or outside its innermost
//     relevant loop;
//   - partial-sum read-modify-write traffic when a reduction loop sits
//     outside the innermost output-relevant loop;
//   - per-level roofline latency: iterations × max(child latency,
//     transfer time), with a DRAM bandwidth floor at the top;
//   - minimum buffer requirement = double-buffered spatial-union footprint
//     of the child tiles (the paper's Fig. 3(f), with input halos).
package cost

import (
	"fmt"
	"math"
	"sync"

	"digamma/internal/arch"
	"digamma/internal/mapping"
	"digamma/internal/workload"
)

// Tensor identifies an operand of a layer.
type Tensor uint8

// The three operand tensors.
const (
	Weights Tensor = iota
	Inputs
	Outputs
	NumTensors
)

var tensorNames = [NumTensors]string{"W", "I", "O"}

// String returns the single-letter tensor name used in the paper.
func (t Tensor) String() string {
	if t >= NumTensors {
		return fmt.Sprintf("Tensor(%d)", uint8(t))
	}
	return tensorNames[t]
}

// BufferReq is a per-tensor buffer requirement in words.
type BufferReq struct {
	Weights float64
	Inputs  float64
	Outputs float64
}

// Total returns the summed requirement in words.
func (b BufferReq) Total() float64 { return b.Weights + b.Inputs + b.Outputs }

// LevelStats captures the analysis of one hierarchy level.
type LevelStats struct {
	Trips        workload.Vector // temporal trip counts (spatial dim holds folds)
	Fanout       int             // available sub-units
	Occupancy    int             // sub-units actually used (≤ Fanout)
	Iterations   float64         // product of trips = loop iterations per parent pass
	IngressWords float64         // W+I words into this level's children per parent pass
	EgressWords  float64         // O words out of this level per parent pass
	BufferWords  BufferReq       // minimum (single-copy) buffer requirement at this level
}

// Result is the full analysis of one layer on one design point.
type Result struct {
	Cycles      float64      // total latency in cycles
	ComputeOnly float64      // pure-compute roofline (MACs / PEs) for reference
	MappedMACs  float64      // MACs charged including ragged-tile padding
	DRAMWords   float64      // words crossing the chip boundary
	NoCWords    float64      // words crossing all on-chip level boundaries
	L1Words     float64      // words through per-PE buffers (incl. operand reads)
	L2Words     float64      // words through shared buffers
	Levels      []LevelStats // per-level detail, inner-first
	Utilization float64      // effective PE utilization = ideal / achieved cycles

	// CacheKey is the evaluation-cache key this result is published under
	// (set once by the cache owner before the result is shared, zero for
	// results that never enter a cache). Not an analysis output: it exists
	// so the intrusive cache can read the key off the value instead of
	// allocating a separate (key, value) pair per insert.
	CacheKey uint64
}

// Clone returns a deep copy with private backing. Search results are
// slab-allocated (see newResult); a result that outlives its search —
// the returned best, a retained report — must be cloned so it cannot pin
// a whole slab of dead slab-mates in memory.
func (r *Result) Clone() *Result {
	out := *r
	out.Levels = append([]LevelStats(nil), r.Levels...)
	return &out
}

// BufReqBytes returns the minimum per-instance buffer capacity (bytes) for
// each level, inner-first, including the double-buffering factor. This is
// the paper's buffer allocation strategy: the co-opt framework sizes
// buffers to exactly these values.
func (r *Result) BufReqBytes(bytesPerWord int) []int64 {
	out := make([]int64, len(r.Levels))
	for i, lv := range r.Levels {
		out[i] = int64(math.Ceil(lv.BufferWords.Total())) * 2 * int64(bytesPerWord)
	}
	return out
}

// EnergyPJ converts the movement counters into dynamic energy.
func (r *Result) EnergyPJ(em arch.EnergyModel) float64 {
	return r.MappedMACs*em.MACpJ +
		r.L1Words*em.L1pJ +
		r.L2Words*em.L2pJ +
		r.NoCWords*em.NoCpJ +
		r.DRAMWords*em.DRAMpJ
}

// inlineLevels is the hierarchy depth covered by the fused result
// allocation; DiGamma's clustering ceiling (MaxLevels, paper: 3) stays
// below it, so one analysis costs one allocation on the search hot path.
const inlineLevels = 4

// resultBuf2 / resultBuf fuse the Result header with backing storage for
// the Levels slice so both come from a single allocation. Two sizes:
// results live in the evaluation cache, and the canonical 2-level encoding
// dominates, so padding every result to the 4-level worst case would waste
// ~40% of the cache's bytes.
type resultBuf2 struct {
	res    Result
	levels [2]LevelStats
}

type resultBuf struct {
	res    Result
	levels [inlineLevels]LevelStats
}

// resultSlab hands out 2-level result buffers carved from slabs: one
// allocation covers resultSlabLen analyses. Fresh results are written
// once, published (to the evaluation cache and Evaluations) and then
// immutable, so slab-mates never alias mutable state; the GC reclaims a
// slab when its last surviving result is dropped. Arenas cycle through a
// sync.Pool so concurrent analyzers never share a partially-filled slab.
type resultSlab struct {
	buf  []resultBuf2
	next int
}

const resultSlabLen = 64

var resultSlabs = sync.Pool{New: func() any { return &resultSlab{} }}

// newResult allocates a Result with an L-level detail slice, fusing the two
// allocations for the common shallow hierarchies. The dominant 2-level
// case (the canonical encoding) is slab-allocated: the analysis hot path
// creates thousands of results per search, and one slab allocation per 64
// of them keeps the garbage collector off the critical path.
func newResult(L int) *Result {
	switch {
	case L <= 2:
		a := resultSlabs.Get().(*resultSlab)
		if a.next == len(a.buf) {
			a.buf = make([]resultBuf2, resultSlabLen)
			a.next = 0
		}
		buf := &a.buf[a.next]
		a.next++
		resultSlabs.Put(a)
		buf.res.Levels = buf.levels[:L]
		return &buf.res
	case L <= inlineLevels:
		buf := &resultBuf{}
		buf.res.Levels = buf.levels[:L]
		return &buf.res
	default:
		return &Result{Levels: make([]LevelStats, L)}
	}
}

// relevance returns, per tensor, which dims the tensor depends on.
func relevance(layer workload.Layer) [NumTensors][workload.NumDims]bool {
	w, in, out := layer.TensorDims()
	return [NumTensors][workload.NumDims]bool{Weights: w, Inputs: in, Outputs: out}
}

// footprint returns the tensor footprint in words for the given effective
// tile extents, applying the input halo transform. It runs six times per
// level per analysis, so the stride/halo parameters come precomputed from
// the Analyzer.
func (a *Analyzer) footprint(rel [workload.NumDims]bool, t Tensor, tile workload.Vector) float64 {
	if t == Inputs {
		ch := tile[workload.C]
		if a.depthwise {
			ch = tile[workload.K]
		}
		iy := (tile[workload.Y]-1)*a.strideY + tile[workload.R]
		ix := (tile[workload.X]-1)*a.strideX + tile[workload.S]
		return float64(ch) * float64(iy) * float64(ix)
	}
	fp := 1.0
	for _, d := range workload.AllDims {
		if rel[d] {
			fp *= float64(tile[d])
		}
	}
	return fp
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// Analyzer carries the layer-invariant inputs of the performance model —
// tensor relevance, full dims, stride/halo parameters and the ideal MAC
// count — precomputed once so that repeated analyses of the same layer
// (the genetic search evaluates each unique layer thousands of times) skip
// re-deriving them per call.
type Analyzer struct {
	Layer workload.Layer

	rel       [NumTensors][workload.NumDims]bool
	full      workload.Vector
	macs      float64
	strideY   int
	strideX   int
	depthwise bool
	lbWords   float64 // minimal chip-boundary words (see bound.go)
}

// NewAnalyzer precomputes the analysis constants of one layer, including
// the roofline-bound traffic floor LowerBound screens with.
func NewAnalyzer(layer workload.Layer) Analyzer {
	a := newAnalyzer(layer)
	a.lbWords = lowerBoundWords(&a)
	return a
}

// newAnalyzer fills only the constants the analytical model reads — the
// one-shot Analyze path builds a throwaway Analyzer per call and must not
// pay for bound constants it never uses.
func newAnalyzer(layer workload.Layer) Analyzer {
	sy, sx := layer.Strides()
	return Analyzer{
		Layer:     layer,
		rel:       relevance(layer),
		full:      layer.Dims(),
		macs:      float64(layer.MACs()),
		strideY:   sy,
		strideX:   sx,
		depthwise: layer.Type == workload.DepthwiseConv,
	}
}

// Analyze evaluates one layer on the design point (hw, m). The mapping must
// have exactly hw.Levels() levels and be legal for the layer (callers
// should Repair first); Analyze returns an error otherwise.
func Analyze(hw arch.HW, m mapping.Mapping, layer workload.Layer) (*Result, error) {
	a := newAnalyzer(layer)
	return a.Analyze(hw, m)
}

// Analyze validates the design point and scores it.
func (a *Analyzer) Analyze(hw arch.HW, m mapping.Mapping) (*Result, error) {
	hw = hw.Defaults()
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(a.Layer); err != nil {
		return nil, err
	}
	return a.AnalyzeTrusted(hw, m)
}

// AnalyzeTrusted scores a design point without re-validating it: hw must
// already be Defaults()-normalized and structurally valid, and m legal for
// the layer (exactly what a Space.Repair guarantees). The co-opt framework
// uses this on its hot path, where every genome is repaired before
// evaluation; everyone else should call Analyze.
func (a *Analyzer) AnalyzeTrusted(hw arch.HW, m mapping.Mapping) (*Result, error) {
	if len(m.Levels) != hw.Levels() {
		return nil, fmt.Errorf("cost: mapping has %d levels, hw has %d", len(m.Levels), hw.Levels())
	}

	L := len(m.Levels)
	rel := a.rel
	full := a.full

	res := newResult(L)

	// Per-level structural analysis.
	for l := 0; l < L; l++ {
		lv := &m.Levels[l]
		parent := full
		if l+1 < L {
			parent = m.Levels[l+1].Tiles
		}
		st := &res.Levels[l]
		st.Fanout = hw.Fanouts[l]

		iters := 1.0
		for _, d := range workload.AllDims {
			chunks := ceilDiv(parent[d], lv.Tiles[d])
			if d == lv.Spatial {
				st.Occupancy = chunks
				if st.Occupancy > st.Fanout {
					st.Occupancy = st.Fanout
				}
				st.Trips[d] = ceilDiv(chunks, st.Fanout)
			} else {
				st.Trips[d] = chunks
			}
			iters *= float64(st.Trips[d])
		}
		st.Iterations = iters

		// Effective (spatial-union) tile extents seen by this level's buffer.
		eff := lv.Tiles
		eff[lv.Spatial] *= st.Occupancy
		if eff[lv.Spatial] > parent[lv.Spatial] {
			eff[lv.Spatial] = parent[lv.Spatial]
		}

		// Minimum single-copy buffer requirement at this level. Level 0 is
		// the per-PE L1 and holds only the PE's own tile; outer levels hold
		// the spatial union of their children's tiles.
		bufTile := lv.Tiles
		if l > 0 {
			bufTile = eff
		}
		st.BufferWords = BufferReq{
			Weights: a.footprint(rel[Weights], Weights, bufTile),
			Inputs:  a.footprint(rel[Inputs], Inputs, bufTile),
			Outputs: a.footprint(rel[Outputs], Outputs, bufTile),
		}

		// Stationarity rule for all three tensors in one pass over the loop
		// order (outermost first): a tensor is reloaded once per iteration
		// of every loop at or outside its innermost relevant loop, i.e. its
		// load count is the trip-count prefix product at that position.
		// Trips of 1 multiply exactly, so skipping them is bit-identical.
		loadsW, loadsI, touches := 1.0, 1.0, 1.0
		prefix := 1.0
		for _, d := range lv.Order {
			if st.Trips[d] > 1 {
				prefix *= float64(st.Trips[d])
				if rel[Weights][d] {
					loadsW = prefix
				}
				if rel[Inputs][d] {
					loadsI = prefix
				}
				if rel[Outputs][d] {
					touches = prefix
				}
			}
		}

		// Ingress traffic (weights + inputs).
		st.IngressWords += loadsW * a.footprint(rel[Weights], Weights, eff)
		st.IngressWords += loadsI * a.footprint(rel[Inputs], Inputs, eff)

		// Egress traffic (outputs) with partial-sum read-modify-write.
		finalWrites := 1.0
		for _, d := range workload.AllDims {
			if rel[Outputs][d] {
				finalWrites *= float64(st.Trips[d])
			}
		}
		revisits := touches / finalWrites
		if revisits < 1 {
			revisits = 1
		}
		st.EgressWords = finalWrites * (2*revisits - 1) * a.footprint(rel[Outputs], Outputs, eff)
	}

	// Latency recursion, inner to outer.
	lat := float64(m.Levels[0].Tiles.Product()) // cycles per PE tile (1 MAC/cycle)
	peTileMACs := lat
	for l := 0; l < L; l++ {
		st := &res.Levels[l]
		xfer := (st.IngressWords + st.EgressWords) / st.Iterations / hw.LevelBandwidth(l)
		step := lat
		if xfer > step {
			step = xfer
		}
		lat = st.Iterations*step + xfer // + pipeline fill of the first tile
	}

	// Chip-boundary traffic = the top level's traffic (the global buffer is
	// minimum-sized, so every refetch reaches DRAM). The bandwidth floor is
	// applied only when off-chip bandwidth is modeled; by default latency
	// follows MAESTRO's overlapped-prefetch assumption and DRAM traffic
	// affects energy only.
	top := res.Levels[L-1]
	res.DRAMWords = top.IngressWords + top.EgressWords
	if hw.DRAMWordsPerCycle > 0 {
		if floor := res.DRAMWords / hw.DRAMWordsPerCycle; floor > lat {
			lat = floor
		}
	}
	res.Cycles = lat

	// Global movement totals. passes(l) = times one level-l group runs its
	// loop space; groups(l) = occupied level-(l+1) unit count.
	passes := 1.0
	groups := 1.0
	for l := L - 1; l >= 0; l-- {
		st := &res.Levels[l]
		levelWords := (st.IngressWords + st.EgressWords) * passes * groups
		res.NoCWords += levelWords * hw.LevelHops(l)
		if l == 0 {
			res.L1Words += levelWords
		} else {
			res.L2Words += levelWords
		}
		passes *= st.Iterations
		groups *= float64(st.Occupancy)
	}
	res.MappedMACs = peTileMACs * passes * groups // groups = Π occupancies
	// Operand reads feeding the MACs from L1 (weight + input per MAC;
	// partial sums accumulate in the PE register).
	res.L1Words += 2 * res.MappedMACs

	totalPEs := float64(hw.NumPEs())
	res.ComputeOnly = a.macs / totalPEs
	if res.Cycles > 0 {
		res.Utilization = a.macs / (res.Cycles * totalPEs)
	}
	return res, nil
}

// FitsBuffers reports whether the analysis' double-buffered requirements
// fit the capacities of hw at every level, returning the first violating
// level (or -1). Used by the Fixed-HW (GAMMA) flow, where buffers are a
// constraint rather than a derived quantity.
func (r *Result) FitsBuffers(hw arch.HW) (bool, int) {
	req := r.BufReqBytes(hw.Defaults().BytesPerWord)
	for l, b := range req {
		if l < len(hw.BufBytes) && b > hw.BufBytes[l] {
			return false, l
		}
	}
	return true, -1
}
