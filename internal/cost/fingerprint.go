package cost

// Fingerprint versions the semantics of the performance model. Any change
// that can alter an analysis result for the same (hardware, mapping,
// layer) inputs — a fixed traffic formula, a new charging rule, a changed
// default — must bump this string. Persistent analysis caches
// (internal/evalstore) stamp their segments with it and discard entries
// recorded under a different fingerprint, so stale results can never leak
// across model versions.
const Fingerprint = "digamma-cost/v1"
