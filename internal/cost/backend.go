// Fidelity-tiered cost backends. The analytical model in model.go is one
// point on a fidelity/cost spectrum: below it sits a provable roofline
// lower bound (cheap enough to screen candidates before paying for full
// analysis), above it a physically-derived variant whose interconnect and
// off-chip parameters come from the noc and dram models instead of free
// constants. A Backend packages one such tier behind a uniform seam so the
// co-optimization framework, the serving API and the CLI tools can select
// fidelity per run, and the evaluation cache can version its keys by
// backend identity.
package cost

import (
	"fmt"

	"digamma/internal/arch"
	"digamma/internal/dram"
	"digamma/internal/mapping"
	"digamma/internal/noc"
)

// Backend is one fidelity tier of the layer cost model. Implementations
// are immutable value types: the same backend may score layers from many
// goroutines concurrently.
//
// The calling convention mirrors the co-opt hot path: PrepareHW runs once
// per design point on a Defaults()-normalized configuration, then Analyze
// runs once per unique layer with that prepared hardware and a mapping the
// caller has already repaired (exactly what Analyzer.AnalyzeTrusted
// expects). EffectiveEnergy runs once per problem, not per evaluation.
type Backend interface {
	// Name identifies the backend, including any fidelity-relevant
	// parameters — cache keys and request hashes are versioned by it, so
	// two backends that can score the same design point differently must
	// never share a name.
	Name() string

	// PrepareHW derives or normalizes hardware parameters before analysis
	// (the physical backend installs its NoC and DRAM models here). It
	// must not touch BufBytes: the co-opt framework derives buffers after
	// analysis through the same slice it passes in.
	PrepareHW(hw arch.HW) arch.HW

	// Analyze scores one layer on a prepared design point.
	Analyze(a *Analyzer, hw arch.HW, m mapping.Mapping) (*Result, error)

	// EffectiveEnergy maps the platform's energy constants to the ones
	// this backend's results should be priced with (the physical backend
	// replaces the free per-word DRAM constant with the derived one).
	EffectiveEnergy(em arch.EnergyModel) arch.EnergyModel
}

// Analytical is the default backend: the MAESTRO-style closed-form model
// of model.go, with bandwidths and energy constants taken as given.
type Analytical struct{}

// Name implements Backend.
func (Analytical) Name() string { return "analytical" }

// PrepareHW implements Backend (identity).
func (Analytical) PrepareHW(hw arch.HW) arch.HW { return hw }

// Analyze implements Backend via the trusted analytical path.
func (Analytical) Analyze(a *Analyzer, hw arch.HW, m mapping.Mapping) (*Result, error) {
	return a.AnalyzeTrusted(hw, m)
}

// EffectiveEnergy implements Backend (identity).
func (Analytical) EffectiveEnergy(em arch.EnergyModel) arch.EnergyModel { return em }

// Physical is the high-fidelity backend: the same closed-form analysis,
// but with the hardware's interconnect bandwidth, hop counts and wiring
// area derived from an explicit noc.Config per hierarchy level, and the
// off-chip bandwidth floor plus per-word DRAM energy derived from a banked
// dram.Config — instead of the evaluation's flat free parameters. Designs
// that lean on cheap broadcast or free off-chip bandwidth pay for them
// here, which shifts which points win an area-constrained search.
type Physical struct {
	// NoC is the interconnect model installed at every hierarchy level.
	NoC noc.Config
	// DRAM is the off-chip channel behind the global buffer.
	DRAM dram.Config
	// RowHitRate is the assumed DRAM row-buffer hit rate of the access
	// stream, in [0,1]; it fixes both the sustained bandwidth and the
	// per-word energy. Accelerator streams are tiled and mostly
	// sequential, so the default (0.5) sits between random and streaming.
	RowHitRate float64
}

// DefaultPhysical returns the physical backend used by the "physical"
// fidelity tier: a binary fat-tree NoC whose root bandwidth matches the
// analytical default (2 links × 8 words/cycle = 16), over a DDR4-3200
// channel at a 0.5 row-hit rate.
func DefaultPhysical() Physical {
	return Physical{
		NoC:        noc.Config{Topology: noc.Tree, LinkWords: 8},
		DRAM:       dram.DDR4(),
		RowHitRate: 0.5,
	}
}

// Name implements Backend; the fidelity-relevant parameters are folded in
// so differently-configured physical backends never collide in caches.
func (p Physical) Name() string {
	return fmt.Sprintf("physical/%s-%g/dram-%g-%g@%.2f",
		p.NoC.Topology, p.NoC.LinkWords,
		p.DRAM.WordsPerCycle(p.RowHitRate), p.DRAM.PJPerWord(p.RowHitRate), p.RowHitRate)
}

// PrepareHW implements Backend: it attaches the NoC model to every
// hierarchy level (replacing the flat NoCWordsPerCycle) and imposes the
// derived off-chip bandwidth floor. An explicit NoC already present on the
// configuration is respected.
func (p Physical) PrepareHW(hw arch.HW) arch.HW {
	if hw.NoC == nil {
		levels := make([]noc.Config, hw.Levels())
		for l := range levels {
			levels[l] = p.NoC
		}
		hw.NoC = levels
	}
	hw.DRAMWordsPerCycle = p.DRAM.WordsPerCycle(p.RowHitRate)
	return hw
}

// Analyze implements Backend: the closed-form analysis runs unchanged —
// the fidelity difference lives entirely in the prepared hardware and the
// effective energy constants.
func (p Physical) Analyze(a *Analyzer, hw arch.HW, m mapping.Mapping) (*Result, error) {
	return a.AnalyzeTrusted(hw, m)
}

// EffectiveEnergy implements Backend: the free per-word DRAM constant is
// replaced with the banked model's derived cost (array access + interface
// + amortized activation at the assumed row-hit rate).
func (p Physical) EffectiveEnergy(em arch.EnergyModel) arch.EnergyModel {
	em.DRAMpJ = p.DRAM.PJPerWord(p.RowHitRate)
	return em
}

// Bound is the low-fidelity backend: a provable peak-compute / bandwidth
// roofline lower bound per layer (see Analyzer.LowerBound), costing a
// handful of float operations instead of a full per-level analysis. Its
// Result carries the bound as Cycles and the minimal movement counters,
// so energy and derived objectives are lower bounds too; per-level detail
// and buffer requirements are absent (buffers derive to zero). Useful as
// an ultra-cheap screening tier, and — through coopt.Problem.FitnessBound
// — as the pruning predicate of a full-fidelity search.
type Bound struct{}

// Name implements Backend.
func (Bound) Name() string { return "bound" }

// PrepareHW implements Backend (identity).
func (Bound) PrepareHW(hw arch.HW) arch.HW { return hw }

// Analyze implements Backend: the roofline bound rendered as a Result.
func (Bound) Analyze(a *Analyzer, hw arch.HW, m mapping.Mapping) (*Result, error) {
	b := a.LowerBound(hw, m)
	res := &Result{
		Cycles:      b.Cycles,
		ComputeOnly: b.MACs / float64(hw.NumPEs()),
		MappedMACs:  b.MACs,
		DRAMWords:   b.MinWords,
		NoCWords:    b.MinWords,
		L1Words:     2 * b.MACs,
	}
	if hw.Levels() >= 2 {
		res.L2Words = b.MinWords
	}
	if res.Cycles > 0 {
		res.Utilization = b.MACs / (res.Cycles * float64(hw.NumPEs()))
	}
	return res, nil
}

// EffectiveEnergy implements Backend (identity).
func (Bound) EffectiveEnergy(em arch.EnergyModel) arch.EnergyModel { return em }

// BackendNames lists the selectable fidelity tiers, cheapest-first.
var BackendNames = []string{"bound", "analytical", "physical"}

// BackendByName resolves a fidelity tier: "analytical" (the default
// model), "physical" (DefaultPhysical) or "bound" (the roofline screen).
func BackendByName(name string) (Backend, error) {
	switch name {
	case "analytical":
		return Analytical{}, nil
	case "physical":
		return DefaultPhysical(), nil
	case "bound":
		return Bound{}, nil
	default:
		return nil, fmt.Errorf("cost: unknown backend %q (want one of %v)", name, BackendNames)
	}
}
