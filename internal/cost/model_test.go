package cost

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"digamma/internal/arch"
	"digamma/internal/mapping"
	"digamma/internal/noc"
	"digamma/internal/workload"
)

func hw1PE() arch.HW {
	return arch.HW{Fanouts: []int{1}, BufBytes: []int64{1 << 20}}
}

func hw2L(f0, f1 int) arch.HW {
	return arch.HW{Fanouts: []int{f0, f1}, BufBytes: []int64{1 << 20, 1 << 24}}
}

func orderOf(ds ...workload.Dim) [workload.NumDims]workload.Dim {
	var order [workload.NumDims]workload.Dim
	used := map[workload.Dim]bool{}
	i := 0
	for _, d := range ds {
		order[i] = d
		used[d] = true
		i++
	}
	for _, d := range workload.AllDims {
		if !used[d] {
			order[i] = d
			i++
		}
	}
	return order
}

func fullTileMapping(l workload.Layer, levels int) mapping.Mapping {
	m := mapping.Mapping{Levels: make([]mapping.Level, levels)}
	for i := range m.Levels {
		m.Levels[i] = mapping.Level{
			Spatial: workload.K,
			Order:   mapping.CanonicalOrder(),
			Tiles:   l.Dims(),
		}
	}
	return m
}

func TestAnalyzeRejectsMismatchedLevels(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.GEMM, K: 4, C: 4, Y: 1, X: 1, R: 1, S: 1}
	m := fullTileMapping(l, 1)
	if _, err := Analyze(hw2L(4, 4), m, l); err == nil {
		t.Error("level mismatch accepted")
	}
}

func TestAnalyzeRejectsInvalidMapping(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.GEMM, K: 4, C: 4, Y: 1, X: 1, R: 1, S: 1}
	m := fullTileMapping(l, 1)
	m.Levels[0].Tiles[workload.K] = 0
	if _, err := Analyze(hw1PE(), m, l); err == nil {
		t.Error("invalid mapping accepted")
	}
}

// A single PE computing the whole layer in one tile must take exactly
// MACs cycles of compute (plus fill), with utilization near 1 unless
// bandwidth-bound.
func TestSinglePEFullTile(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.Conv, K: 8, C: 4, Y: 4, X: 4, R: 3, S: 3}
	m := fullTileMapping(l, 1)
	r, err := Analyze(hw1PE(), m, l)
	if err != nil {
		t.Fatal(err)
	}
	macs := float64(l.MACs())
	if r.MappedMACs != macs {
		t.Errorf("MappedMACs = %g, want %g", r.MappedMACs, macs)
	}
	if r.Cycles < macs {
		t.Errorf("Cycles = %g < MACs %g", r.Cycles, macs)
	}
	if r.Cycles > macs*1.5 {
		t.Errorf("Cycles = %g unreasonably above MACs %g", r.Cycles, macs)
	}
}

// Weight-stationary loop order (K,C outer) must move fewer weight words
// than an order that iterates Y outside the weight loops.
func TestLoopOrderAffectsWeightTraffic(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.GEMM, K: 16, C: 16, Y: 64, X: 1, R: 1, S: 1}
	base := mapping.Mapping{Levels: []mapping.Level{{
		Spatial: workload.X, // no parallelism; pure temporal
		Order:   orderOf(workload.K, workload.C, workload.Y),
		Tiles:   workload.Vector{1, 1, 1, 1, 1, 1},
	}}}
	ws, err := Analyze(hw1PE(), base, l)
	if err != nil {
		t.Fatal(err)
	}
	alt := base.Clone()
	alt.Levels[0].Order = orderOf(workload.Y, workload.K, workload.C)
	ys, err := Analyze(hw1PE(), alt, l)
	if err != nil {
		t.Fatal(err)
	}
	// K,C outermost: weights loaded K*C times. Y outermost: K*C*Y times.
	wWS := ws.Levels[0].IngressWords
	wYS := ys.Levels[0].IngressWords
	if wWS >= wYS {
		t.Errorf("weight-friendly order ingress %g should be < output-first order %g", wWS, wYS)
	}
}

// Keeping the reduction loop innermost avoids partial-sum read-modify-write
// traffic; hoisting it outside the output loops must increase egress.
func TestPsumTraffic(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.GEMM, K: 8, C: 32, Y: 1, X: 1, R: 1, S: 1}
	inner := mapping.Mapping{Levels: []mapping.Level{{
		Spatial: workload.X,
		Order:   orderOf(workload.K, workload.C),
		Tiles:   workload.Vector{1, 1, 1, 1, 1, 1},
	}}}
	ri, err := Analyze(hw1PE(), inner, l)
	if err != nil {
		t.Fatal(err)
	}
	outer := inner.Clone()
	outer.Levels[0].Order = orderOf(workload.C, workload.K)
	ro, err := Analyze(hw1PE(), outer, l)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Levels[0].EgressWords >= ro.Levels[0].EgressWords {
		t.Errorf("reduction-innermost egress %g should be < reduction-outermost %g",
			ri.Levels[0].EgressWords, ro.Levels[0].EgressWords)
	}
	// Reduction innermost: each output written exactly once.
	if got := ri.Levels[0].EgressWords; got != 8 {
		t.Errorf("reduction-innermost egress = %g, want 8", got)
	}
}

// Parallelizing a size-1 dimension wastes the entire array: this is the
// mechanism behind the paper's Fig. 6 collapse of shi-like mappings on
// recommendation models.
func TestSpatialDimCollapse(t *testing.T) {
	l := workload.Layer{Name: "fc", Type: workload.GEMM, K: 256, C: 256, Y: 1, X: 1, R: 1, S: 1}
	mk := mapping.Mapping{Levels: []mapping.Level{{
		Spatial: workload.K,
		Order:   mapping.CanonicalOrder(),
		Tiles:   workload.Vector{1, 256, 1, 1, 1, 1},
	}}}
	hw := arch.HW{Fanouts: []int{64}, BufBytes: []int64{1 << 20}}
	rk, err := Analyze(hw, mk, l)
	if err != nil {
		t.Fatal(err)
	}
	my := mk.Clone()
	my.Levels[0].Spatial = workload.Y
	ry, err := Analyze(hw, my, l)
	if err != nil {
		t.Fatal(err)
	}
	if rk.Levels[0].Occupancy != 64 {
		t.Errorf("K-parallel occupancy = %d, want 64", rk.Levels[0].Occupancy)
	}
	if ry.Levels[0].Occupancy != 1 {
		t.Errorf("Y-parallel occupancy = %d, want 1", ry.Levels[0].Occupancy)
	}
	if ry.Cycles < 4*rk.Cycles {
		t.Errorf("Y-parallel (%g cycles) should be ≫ K-parallel (%g cycles)", ry.Cycles, rk.Cycles)
	}
}

// Doubling the PE array with the same per-PE tiles must not slow things
// down, and should speed up a compute-bound layer.
func TestMorePEsHelpComputeBound(t *testing.T) {
	l := workload.Layer{Name: "conv", Type: workload.Conv, K: 64, C: 64, Y: 16, X: 16, R: 3, S: 3}
	tile := workload.Vector{4, 64, 2, 2, 3, 3}
	mk := func() mapping.Mapping {
		return mapping.Mapping{Levels: []mapping.Level{
			{Spatial: workload.K, Order: orderOf(workload.C, workload.Y, workload.X, workload.K), Tiles: workload.Vector{1, 8, 1, 1, 3, 3}},
			{Spatial: workload.Y, Order: mapping.CanonicalOrder(), Tiles: tile},
		}}
	}
	small, err := Analyze(hw2L(4, 4), mk(), l)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Analyze(hw2L(8, 8), mk(), l)
	if err != nil {
		t.Fatal(err)
	}
	if big.Cycles > small.Cycles {
		t.Errorf("more PEs slower: %g > %g", big.Cycles, small.Cycles)
	}
}

// Ragged tiles (non-divisors) charge padding MACs; divisor tiles don't.
func TestDivisorTilesAvoidPadding(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.GEMM, K: 28, C: 8, Y: 1, X: 1, R: 1, S: 1}
	mk := func(kt int) mapping.Mapping {
		return mapping.Mapping{Levels: []mapping.Level{{
			Spatial: workload.X,
			Order:   mapping.CanonicalOrder(),
			Tiles:   workload.Vector{kt, 8, 1, 1, 1, 1},
		}}}
	}
	even, err := Analyze(hw1PE(), mk(7), l)
	if err != nil {
		t.Fatal(err)
	}
	ragged, err := Analyze(hw1PE(), mk(5), l) // ceil(28/5)=6 tiles → 30 K-extent
	if err != nil {
		t.Fatal(err)
	}
	if even.MappedMACs != float64(l.MACs()) {
		t.Errorf("divisor tiling padded MACs: %g vs %d", even.MappedMACs, l.MACs())
	}
	if ragged.MappedMACs <= even.MappedMACs {
		t.Errorf("ragged tiling should pad MACs: %g vs %g", ragged.MappedMACs, even.MappedMACs)
	}
}

// With off-chip bandwidth explicitly modeled, an embedding-style gather
// (no reuse) must be DRAM-bandwidth-bound; without it the same layer runs
// faster (the MAESTRO-style overlapped-prefetch default).
func TestMemoryBoundLayerHitsDRAMFloor(t *testing.T) {
	l := workload.Layer{Name: "emb", Type: workload.GEMM, K: 512, C: 1, Y: 1, X: 1, R: 1, S: 1}
	m := fullTileMapping(l, 1)
	hw := hw1PE()
	hw.DRAMWordsPerCycle = 0.25 // slow off-chip link
	r, err := Analyze(hw, m, l)
	if err != nil {
		t.Fatal(err)
	}
	floor := r.DRAMWords / hw.DRAMWordsPerCycle
	if r.Cycles < floor {
		t.Errorf("Cycles %g below DRAM floor %g", r.Cycles, floor)
	}
	if r.Utilization > 0.9 {
		t.Errorf("memory-bound layer reports %.2f utilization", r.Utilization)
	}
	noDram := hw1PE()
	r2, err := Analyze(noDram, m, l)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles >= r.Cycles {
		t.Errorf("unmodeled DRAM (%g) should not be slower than modeled (%g)", r2.Cycles, r.Cycles)
	}
	if r2.DRAMWords != r.DRAMWords {
		t.Error("DRAM traffic accounting must not depend on the latency floor")
	}
}

func TestBufferRequirementFormulas(t *testing.T) {
	// Conv tile K=4, C=2, Y=3, X=3, R=3, S=3 (stride 1):
	// W = 4*2*3*3 = 72; I = 2*(3+2)*(3+2) = 50; O = 4*3*3 = 36.
	l := workload.Layer{Name: "l", Type: workload.Conv, K: 8, C: 4, Y: 6, X: 6, R: 3, S: 3}
	m := mapping.Mapping{Levels: []mapping.Level{{
		Spatial: workload.K,
		Order:   mapping.CanonicalOrder(),
		Tiles:   workload.Vector{4, 2, 3, 3, 3, 3},
	}}}
	hw := arch.HW{Fanouts: []int{1}, BufBytes: []int64{1 << 20}}
	r, err := Analyze(hw, m, l)
	if err != nil {
		t.Fatal(err)
	}
	b := r.Levels[0].BufferWords
	if b.Weights != 72 || b.Inputs != 50 || b.Outputs != 36 {
		t.Errorf("BufferWords = %+v, want W=72 I=50 O=36", b)
	}
	// Double-buffered bytes at 2 B/word: (72+50+36)*2*2 = 632.
	req := r.BufReqBytes(2)
	if req[0] != 632 {
		t.Errorf("BufReqBytes = %d, want 632", req[0])
	}
}

func TestSpatialUnionBufferAtOuterLevel(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.GEMM, K: 64, C: 16, Y: 1, X: 1, R: 1, S: 1}
	m := mapping.Mapping{Levels: []mapping.Level{
		{Spatial: workload.K, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{1, 16, 1, 1, 1, 1}},
		{Spatial: workload.K, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{4, 16, 1, 1, 1, 1}},
	}}
	hw := hw2L(4, 8) // 4 PEs per array, 8 arrays
	r, err := Analyze(hw, m, l)
	if err != nil {
		t.Fatal(err)
	}
	// Top level: chunks of K = 64/4 = 16, occupancy min(16,8) = 8.
	if occ := r.Levels[1].Occupancy; occ != 8 {
		t.Errorf("top occupancy = %d, want 8", occ)
	}
	// Top buffer weights = union K extent (8*4=32) × C 16 = 512 words.
	if w := r.Levels[1].BufferWords.Weights; w != 512 {
		t.Errorf("top weight buffer = %g, want 512", w)
	}
}

func TestDepthwiseRelevance(t *testing.T) {
	l := workload.Layer{Name: "dw", Type: workload.DepthwiseConv, K: 32, C: 1, Y: 8, X: 8, R: 3, S: 3}
	m := mapping.Mapping{Levels: []mapping.Level{{
		Spatial: workload.K,
		Order:   mapping.CanonicalOrder(),
		Tiles:   workload.Vector{4, 1, 8, 8, 3, 3},
	}}}
	hw := arch.HW{Fanouts: []int{8}, BufBytes: []int64{1 << 20}}
	r, err := Analyze(hw, m, l)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs depend on K for depthwise: spatial K parallelism must
	// partition the input (no multicast) → buffer input channels = 4.
	wantI := 4.0 * 10 * 10 // per-PE tile: 4 ch × (8+2)² halo
	if got := r.Levels[0].BufferWords.Inputs; got != wantI {
		t.Errorf("depthwise input buffer = %g, want %g", got, wantI)
	}
}

func TestFitsBuffers(t *testing.T) {
	l := workload.Layer{Name: "l", Type: workload.GEMM, K: 64, C: 64, Y: 1, X: 1, R: 1, S: 1}
	m := fullTileMapping(l, 1)
	r, err := Analyze(hw1PE(), m, l)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.FitsBuffers(hw1PE()); !ok {
		t.Error("1 MB buffer rejected for a 4K-word tile")
	}
	tiny := arch.HW{Fanouts: []int{1}, BufBytes: []int64{64}}
	if ok, lvl := r.FitsBuffers(tiny); ok || lvl != 0 {
		t.Errorf("FitsBuffers(tiny) = %v, %d; want false, 0", ok, lvl)
	}
}

func TestEnergyPositiveAndOrdered(t *testing.T) {
	l := workload.Layer{Name: "conv", Type: workload.Conv, K: 32, C: 16, Y: 8, X: 8, R: 3, S: 3}
	m := mapping.Mapping{Levels: []mapping.Level{
		{Spatial: workload.K, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{2, 4, 2, 2, 3, 3}},
		{Spatial: workload.C, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{8, 8, 4, 4, 3, 3}},
	}}
	r, err := Analyze(hw2L(4, 4), m, l)
	if err != nil {
		t.Fatal(err)
	}
	e := r.EnergyPJ(arch.DefaultEnergyModel())
	if e <= 0 || math.IsNaN(e) {
		t.Errorf("energy = %g", e)
	}
	if r.L1Words < 2*r.MappedMACs {
		t.Errorf("L1 words %g below operand-read floor %g", r.L1Words, 2*r.MappedMACs)
	}
}

// Property: random legal mappings never produce NaN/negative metrics and
// keep utilization in (0, 1].
func TestAnalyzeInvariantsOnRandomMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	layers := []workload.Layer{
		{Name: "conv", Type: workload.Conv, K: 64, C: 32, Y: 28, X: 28, R: 3, S: 3},
		{Name: "dw", Type: workload.DepthwiseConv, K: 96, C: 1, Y: 14, X: 14, R: 5, S: 5},
		{Name: "fc", Type: workload.GEMM, K: 1000, C: 512, Y: 1, X: 1, R: 1, S: 1},
		{Name: "strided", Type: workload.Conv, K: 64, C: 3, Y: 112, X: 112, R: 7, S: 7, StrideY: 2, StrideX: 2},
	}
	for _, l := range layers {
		for trial := 0; trial < 150; trial++ {
			levels := 2
			if trial%3 == 0 {
				levels = 3
			}
			m := mapping.Random(rng, l, levels)
			fan := make([]int, levels)
			buf := make([]int64, levels)
			for i := range fan {
				fan[i] = 1 << uint(rng.Intn(6))
				buf[i] = 1 << 24
			}
			hw := arch.HW{Fanouts: fan, BufBytes: buf}
			r, err := Analyze(hw, m, l)
			if err != nil {
				t.Fatalf("%s trial %d: %v", l.Name, trial, err)
			}
			if math.IsNaN(r.Cycles) || math.IsInf(r.Cycles, 0) || r.Cycles <= 0 {
				t.Fatalf("%s trial %d: bad cycles %g", l.Name, trial, r.Cycles)
			}
			if r.Utilization <= 0 || r.Utilization > 1.0+1e-9 {
				t.Fatalf("%s trial %d: utilization %g out of (0,1]", l.Name, trial, r.Utilization)
			}
			if r.MappedMACs < float64(l.MACs()) {
				t.Fatalf("%s trial %d: mapped MACs %g below layer MACs %d", l.Name, trial, r.MappedMACs, l.MACs())
			}
			if r.DRAMWords <= 0 || r.NoCWords < r.DRAMWords {
				t.Fatalf("%s trial %d: traffic inconsistency dram=%g noc=%g", l.Name, trial, r.DRAMWords, r.NoCWords)
			}
			for li, lv := range r.Levels {
				if lv.Occupancy < 1 || lv.Occupancy > lv.Fanout {
					t.Fatalf("%s trial %d level %d: occupancy %d of %d", l.Name, trial, li, lv.Occupancy, lv.Fanout)
				}
				if lv.BufferWords.Total() <= 0 {
					t.Fatalf("%s trial %d level %d: empty buffer req", l.Name, trial, li)
				}
			}
		}
	}
}

// Latency must never beat the compute roofline MACs/PEs.
func TestRooflineLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := workload.Layer{Name: "conv", Type: workload.Conv, K: 128, C: 64, Y: 14, X: 14, R: 3, S: 3}
	for trial := 0; trial < 100; trial++ {
		m := mapping.Random(rng, l, 2)
		hw := hw2L(1<<uint(rng.Intn(5)), 1<<uint(rng.Intn(5)))
		r, err := Analyze(hw, m, l)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles < r.ComputeOnly {
			t.Fatalf("trial %d: cycles %g below roofline %g", trial, r.Cycles, r.ComputeOnly)
		}
	}
}

func TestTensorString(t *testing.T) {
	if Weights.String() != "W" || Inputs.String() != "I" || Outputs.String() != "O" {
		t.Error("tensor names wrong")
	}
	if Tensor(9).String() == "" {
		t.Error("out-of-range tensor name empty")
	}
}

// An explicit NoC model must reshape both latency (bandwidth) and energy
// (hop count): a crossbar outruns a bus, a mesh pays hop energy.
func TestExplicitNoCModel(t *testing.T) {
	l := workload.Layer{Name: "conv", Type: workload.Conv, K: 64, C: 64, Y: 14, X: 14, R: 3, S: 3}
	m := mapping.Mapping{Levels: []mapping.Level{
		{Spatial: workload.K, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{1, 64, 1, 1, 3, 3}},
		{Spatial: workload.Y, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{16, 64, 1, 14, 3, 3}},
	}}
	base := arch.HW{Fanouts: []int{16, 14}, BufBytes: []int64{1 << 20, 1 << 24}}

	busHW := base
	busHW.NoC = []noc.Config{
		{Topology: noc.Bus, LinkWords: 2},
		{Topology: noc.Bus, LinkWords: 2},
	}
	xbarHW := base
	xbarHW.NoC = []noc.Config{
		{Topology: noc.Crossbar, LinkWords: 2},
		{Topology: noc.Crossbar, LinkWords: 2},
	}
	meshHW := base
	meshHW.NoC = []noc.Config{
		{Topology: noc.Mesh1D, LinkWords: 2},
		{Topology: noc.Mesh1D, LinkWords: 2},
	}

	rBus, err := Analyze(busHW, m, l)
	if err != nil {
		t.Fatal(err)
	}
	rXbar, err := Analyze(xbarHW, m, l)
	if err != nil {
		t.Fatal(err)
	}
	rMesh, err := Analyze(meshHW, m, l)
	if err != nil {
		t.Fatal(err)
	}
	if rXbar.Cycles > rBus.Cycles {
		t.Errorf("crossbar (%g) slower than bus (%g)", rXbar.Cycles, rBus.Cycles)
	}
	if rMesh.NoCWords <= rBus.NoCWords {
		t.Errorf("mesh hop-words (%g) not above bus (%g)", rMesh.NoCWords, rBus.NoCWords)
	}
}

func TestDetailReport(t *testing.T) {
	l := workload.Layer{Name: "conv", Type: workload.Conv, K: 32, C: 16, Y: 8, X: 8, R: 3, S: 3}
	m := mapping.Mapping{Levels: []mapping.Level{
		{Spatial: workload.K, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{2, 4, 2, 2, 3, 3}},
		{Spatial: workload.C, Order: mapping.CanonicalOrder(), Tiles: workload.Vector{8, 8, 4, 4, 3, 3}},
	}}
	r, err := Analyze(hw2L(4, 4), m, l)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Detail(arch.DefaultEnergyModel(), l.MACs())
	for _, want := range []string{"latency", "utilization", "level 1", "level 2",
		"buffer demand", "ingress", "padding"} {
		if !strings.Contains(s, want) {
			t.Errorf("Detail missing %q:\n%s", want, s)
		}
	}
	// Without true MACs, the padding note disappears.
	s2 := r.Detail(arch.DefaultEnergyModel(), 0)
	if strings.Contains(s2, "padding") {
		t.Error("padding line present without true MAC count")
	}
}
