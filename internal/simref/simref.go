// Package simref is a brute-force reference simulator for small design
// points: it executes mapping loop nests index by index and counts events
// exactly — MACs issued, unit occupancy, and tensor reloads under the
// stationarity policy. The analytical model in internal/cost computes the
// same quantities in closed form; simref exists to cross-validate that
// implementation (MAESTRO validates against chip prototypes; we validate
// against exhaustive enumeration), so it deliberately favours obvious
// code over speed and refuses problems with large iteration spaces.
package simref

import (
	"errors"
	"fmt"

	"digamma/internal/arch"
	"digamma/internal/mapping"
	"digamma/internal/workload"
)

// MaxIterations bounds the loop space simulated per level; larger requests
// return an error rather than running forever.
const MaxIterations = 1 << 22

// LevelCounts is the exact event count of one level's loop execution.
type LevelCounts struct {
	Iterations int             // temporal loop iterations executed
	Loads      [3]int          // reloads per tensor (W, I, O order as in cost)
	Occupancy  int             // child units active in the spatial dimension
	Trips      workload.Vector // per-dim trip counts used
}

// SimulateLevel executes one level's six temporal loops in the mapping's
// order, with the given parent tile, and counts how many times each
// tensor's relevant index tuple changes (= reloads under a
// hold-only-current-tile buffer). It mirrors exactly the semantics the
// analytical model assumes.
func SimulateLevel(lv mapping.Level, parent workload.Vector, fanout int, layer workload.Layer) (LevelCounts, error) {
	var lc LevelCounts
	if fanout < 1 {
		return lc, errors.New("simref: fanout < 1")
	}

	total := 1
	for _, d := range workload.AllDims {
		chunks := ceilDiv(parent[d], lv.Tiles[d])
		if d == lv.Spatial {
			lc.Occupancy = chunks
			if lc.Occupancy > fanout {
				lc.Occupancy = fanout
			}
			lc.Trips[d] = ceilDiv(chunks, fanout)
		} else {
			lc.Trips[d] = chunks
		}
		total *= lc.Trips[d]
		if total > MaxIterations {
			return lc, fmt.Errorf("simref: %d iterations exceed the cap", total)
		}
	}

	w, in, out := layer.TensorDims()
	rel := [3][workload.NumDims]bool{w, in, out}
	var last [3][workload.NumDims]int
	var have [3]bool

	// Execute the loop nest: idx[pos] counts iterations of the loop at
	// order position pos (outermost = 0).
	idx := make([]int, workload.NumDims)
	for {
		// Current index tuple per dimension.
		var cur workload.Vector
		for pos, d := range lv.Order {
			cur[d] = idx[pos]
		}
		lc.Iterations++
		for t := 0; t < 3; t++ {
			changed := !have[t]
			for _, d := range workload.AllDims {
				if rel[t][d] && last[t][d] != cur[d] {
					changed = true
				}
			}
			if changed {
				lc.Loads[t]++
				for _, d := range workload.AllDims {
					last[t][d] = cur[d]
				}
				have[t] = true
			}
		}
		// Advance odometer, innermost fastest.
		pos := len(idx) - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < lc.Trips[lv.Order[pos]] {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			break
		}
	}
	return lc, nil
}

// TotalCounts is the exact whole-design event count.
type TotalCounts struct {
	MappedMACs float64
	ActivePEs  int // product of level occupancies
}

// SimulateMACs executes every hierarchy level's loop space (sizes
// permitting) and returns the exact mapped MAC count including ragged
// padding — the ground truth for cost.Result.MappedMACs.
func SimulateMACs(hw arch.HW, m mapping.Mapping, layer workload.Layer) (TotalCounts, error) {
	var tc TotalCounts
	if len(m.Levels) != hw.Levels() {
		return tc, errors.New("simref: level mismatch")
	}
	if err := m.Validate(layer); err != nil {
		return tc, err
	}
	full := layer.Dims()

	passes := 1.0
	tc.ActivePEs = 1
	for l := len(m.Levels) - 1; l >= 0; l-- {
		parent := full
		if l+1 < len(m.Levels) {
			parent = m.Levels[l+1].Tiles
		}
		lc, err := SimulateLevel(m.Levels[l], parent, hw.Fanouts[l], layer)
		if err != nil {
			return tc, err
		}
		passes *= float64(lc.Iterations)
		tc.ActivePEs *= lc.Occupancy
	}
	peTile := float64(m.Levels[0].Tiles.Product())
	tc.MappedMACs = peTile * passes * float64(tc.ActivePEs)
	return tc, nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
