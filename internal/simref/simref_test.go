package simref

import (
	"math"
	"math/rand"
	"testing"

	"digamma/internal/arch"
	"digamma/internal/cost"
	"digamma/internal/mapping"
	"digamma/internal/workload"
)

func smallLayer(rng *rand.Rand) workload.Layer {
	pick := func(max int) int { return 1 + rng.Intn(max) }
	switch rng.Intn(3) {
	case 0:
		return workload.Layer{Name: "conv", Type: workload.Conv,
			K: pick(8), C: pick(8), Y: pick(6), X: pick(6), R: pick(3), S: pick(3)}
	case 1:
		return workload.Layer{Name: "dw", Type: workload.DepthwiseConv,
			K: pick(8), C: 1, Y: pick(6), X: pick(6), R: pick(3), S: pick(3)}
	default:
		return workload.Layer{Name: "fc", Type: workload.GEMM,
			K: pick(12), C: pick(12), Y: pick(4), X: 1, R: 1, S: 1}
	}
}

// The analytical model's mapped-MAC and occupancy computation must agree
// exactly with brute-force loop execution across random small designs.
func TestAnalyticalMatchesBruteForceMACs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	agree := 0
	for trial := 0; trial < 300; trial++ {
		layer := smallLayer(rng)
		m := mapping.Random(rng, layer, 2)
		hw := arch.HW{
			Fanouts:  []int{1 + rng.Intn(8), 1 + rng.Intn(8)},
			BufBytes: []int64{1 << 20, 1 << 20},
		}
		want, err := SimulateMACs(hw, m, layer)
		if err != nil {
			continue // iteration cap hit; skip
		}
		got, err := cost.Analyze(hw, m, layer)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got.MappedMACs-want.MappedMACs) > 0.5 {
			t.Fatalf("trial %d (%s, map %s): analytical MACs %g != simulated %g",
				trial, layer.Name, m, got.MappedMACs, want.MappedMACs)
		}
		agree++
	}
	if agree < 200 {
		t.Fatalf("only %d/300 trials simulated (cap too tight?)", agree)
	}
}

// The closed-form stationarity reload count must equal loop-execution
// counting for every tensor on random levels.
func TestReloadCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		layer := smallLayer(rng)
		m := mapping.Random(rng, layer, 1)
		lv := m.Levels[0]
		fanout := 1 + rng.Intn(6)
		lc, err := SimulateLevel(lv, layer.Dims(), fanout, layer)
		if err != nil {
			continue
		}
		hw := arch.HW{Fanouts: []int{fanout}, BufBytes: []int64{1 << 20}}
		r, err := cost.Analyze(hw, m, layer)
		if err != nil {
			t.Fatal(err)
		}
		// Iterations must agree.
		if float64(lc.Iterations) != r.Levels[0].Iterations {
			t.Fatalf("trial %d: iterations %d != %g", trial, lc.Iterations, r.Levels[0].Iterations)
		}
		if lc.Occupancy != r.Levels[0].Occupancy {
			t.Fatalf("trial %d: occupancy %d != %d", trial, lc.Occupancy, r.Levels[0].Occupancy)
		}
		// The closed-form ingress must equal Σ simulated loads × tensor
		// footprint over the spatial-union tile.
		eff := lv.Tiles
		eff[lv.Spatial] *= lc.Occupancy
		if eff[lv.Spatial] > layer.Dim(lv.Spatial) {
			eff[lv.Spatial] = layer.Dim(lv.Spatial)
		}
		want := float64(lc.Loads[0])*weightFootprint(layer, eff) +
			float64(lc.Loads[1])*inputFootprint(layer, eff)
		got := r.Levels[0].IngressWords
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("trial %d (%s, map %s): ingress %g != simulated %g (loads W=%d I=%d)",
				trial, layer.Name, m, got, want, lc.Loads[0], lc.Loads[1])
		}
	}
}

// weightFootprint mirrors the analytical model's weight tile size.
func weightFootprint(l workload.Layer, tile workload.Vector) float64 {
	w, _, _ := l.TensorDims()
	fp := 1.0
	for _, d := range workload.AllDims {
		if w[d] {
			fp *= float64(tile[d])
		}
	}
	return fp
}

// inputFootprint mirrors the analytical model's input halo formula.
func inputFootprint(l workload.Layer, tile workload.Vector) float64 {
	sy, sx := l.Strides()
	ch := tile[workload.C]
	if l.Type == workload.DepthwiseConv {
		ch = tile[workload.K]
	}
	iy := (tile[workload.Y]-1)*sy + tile[workload.R]
	ix := (tile[workload.X]-1)*sx + tile[workload.S]
	return float64(ch) * float64(iy) * float64(ix)
}

// With every tile extent forced to the full dimension on one PE, each
// tensor loads exactly once.
func TestSingleTileLoadsOnce(t *testing.T) {
	layer := workload.Layer{Name: "conv", Type: workload.Conv, K: 4, C: 3, Y: 4, X: 4, R: 3, S: 3}
	lv := mapping.Level{
		Spatial: workload.K,
		Order:   mapping.CanonicalOrder(),
		Tiles:   layer.Dims(),
	}
	lc, err := SimulateLevel(lv, layer.Dims(), 1, layer)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Iterations != 1 {
		t.Errorf("iterations = %d", lc.Iterations)
	}
	for tIdx, loads := range lc.Loads {
		if loads != 1 {
			t.Errorf("tensor %d loaded %d times", tIdx, loads)
		}
	}
}

// Weight-stationary vs output-stationary loop orders must show the
// expected reload asymmetry in brute force too.
func TestSimulatedStationarity(t *testing.T) {
	layer := workload.Layer{Name: "fc", Type: workload.GEMM, K: 6, C: 5, Y: 7, X: 1, R: 1, S: 1}
	tiles := workload.Vector{1, 1, 1, 1, 1, 1}
	ws := mapping.Level{Spatial: workload.X, Tiles: tiles,
		Order: orderOf(workload.K, workload.C, workload.Y)}
	os := mapping.Level{Spatial: workload.X, Tiles: tiles,
		Order: orderOf(workload.Y, workload.K, workload.C)}
	lcWS, err := SimulateLevel(ws, layer.Dims(), 1, layer)
	if err != nil {
		t.Fatal(err)
	}
	lcOS, err := SimulateLevel(os, layer.Dims(), 1, layer)
	if err != nil {
		t.Fatal(err)
	}
	// Weight loads: K*C with weights held across Y; K*C*Y when Y is outer.
	if lcWS.Loads[0] != 6*5 {
		t.Errorf("WS weight loads = %d, want 30", lcWS.Loads[0])
	}
	if lcOS.Loads[0] != 6*5*7 {
		t.Errorf("OS weight loads = %d, want 210", lcOS.Loads[0])
	}
}

func TestSimulateGuards(t *testing.T) {
	layer := workload.Layer{Name: "big", Type: workload.Conv,
		K: 512, C: 512, Y: 64, X: 64, R: 3, S: 3}
	lv := mapping.Level{Spatial: workload.K, Order: mapping.CanonicalOrder(),
		Tiles: workload.Vector{1, 1, 1, 1, 1, 1}}
	if _, err := SimulateLevel(lv, layer.Dims(), 1, layer); err == nil {
		t.Error("iteration cap not enforced")
	}
	if _, err := SimulateLevel(lv, layer.Dims(), 0, layer); err == nil {
		t.Error("zero fanout accepted")
	}
	m := mapping.Mapping{Levels: []mapping.Level{lv}}
	hw := arch.HW{Fanouts: []int{2, 2}, BufBytes: []int64{1, 1}}
	if _, err := SimulateMACs(hw, m, layer); err == nil {
		t.Error("level mismatch accepted")
	}
}

func orderOf(ds ...workload.Dim) [workload.NumDims]workload.Dim {
	var order [workload.NumDims]workload.Dim
	used := map[workload.Dim]bool{}
	i := 0
	for _, d := range ds {
		order[i] = d
		used[d] = true
		i++
	}
	for _, d := range workload.AllDims {
		if !used[d] {
			order[i] = d
			i++
		}
	}
	return order
}

// Three-level hierarchies (DiGamma's Grow operator output) must also match
// brute force exactly.
func TestThreeLevelMACsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	agree := 0
	for trial := 0; trial < 200; trial++ {
		layer := smallLayer(rng)
		m := mapping.Random(rng, layer, 3)
		hw := arch.HW{
			Fanouts:  []int{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)},
			BufBytes: []int64{1 << 20, 1 << 20, 1 << 20},
		}
		want, err := SimulateMACs(hw, m, layer)
		if err != nil {
			continue
		}
		got, err := cost.Analyze(hw, m, layer)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.MappedMACs-want.MappedMACs) > 0.5 {
			t.Fatalf("trial %d: analytical %g != simulated %g (map %s)",
				trial, got.MappedMACs, want.MappedMACs, m)
		}
		agree++
	}
	if agree < 120 {
		t.Fatalf("only %d/200 trials simulated", agree)
	}
}
