// Package space defines the paper's design-point encoding (Fig. 3): a
// genome holding the shared HW genes (per-level fanouts π) and one mapping
// gene block per unique layer (spatial dim P, loop order, tile sizes per
// level). Buffer sizes are deliberately absent — the co-opt framework
// derives them from the minimum buffer requirement (the paper's buffer
// allocation strategy).
//
// The package also provides the continuous [0,1]^n codec that lets generic
// numeric optimizers (CMA, DE, PSO, …) explore the same space: loop orders
// via random keys, tiles and fanouts via log-scaled quantization.
package space

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"strings"

	"digamma/internal/arch"
	"digamma/internal/mapping"
	"digamma/internal/workload"
)

// Genome is one encoded design point: the HW genes plus per-layer mapping
// genes. All mappings have len(Fanouts) levels.
type Genome struct {
	Fanouts []int             // π per hierarchy level, inner-first
	Maps    []mapping.Mapping // one per unique layer, aligned with Space.Layers
}

// Clone returns a deep copy.
func (g Genome) Clone() Genome {
	out := Genome{Fanouts: append([]int(nil), g.Fanouts...)}
	out.Maps = make([]mapping.Mapping, len(g.Maps))
	for i, m := range g.Maps {
		out.Maps[i] = m.Clone()
	}
	return out
}

// Levels returns the clustering depth of the genome.
func (g Genome) Levels() int { return len(g.Fanouts) }

// NumPEs returns the total PE count implied by the HW genes.
func (g Genome) NumPEs() int {
	n := 1
	for _, f := range g.Fanouts {
		n *= f
	}
	return n
}

// String renders the genome in the paper's Fig. 7 gene-table style.
func (g Genome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HW π=%v (PEs=%d)\n", g.Fanouts, g.NumPEs())
	for i, m := range g.Maps {
		fmt.Fprintf(&b, "  layer %d: %s\n", i, m)
	}
	return b.String()
}

// Space describes the searchable design space for one co-optimization
// problem: the unique layers of the target model, the clustering depth
// used by the continuous codec, and per-level fanout caps. When FixedHW is
// non-nil the HW genes are frozen to its fanouts (the paper's Fixed-HW
// use-case) and removed from the continuous vector.
type Space struct {
	Layers    []workload.Layer
	Levels    int // clustering depth for the continuous codec (≥ 1)
	MaxFanout int // upper bound for each π gene
	FixedHW   *arch.HW
}

// New builds a Space for a model on a platform: unique layers, a 2-level
// hierarchy (the paper's canonical encoding), and a fanout cap derived
// from the area budget (no single level can hold more PEs than the budget
// affords).
func New(model workload.Model, platform arch.Platform) Space {
	return Space{
		Layers:    model.UniqueLayers(),
		Levels:    2,
		MaxFanout: platform.Area.MaxPEs(platform.AreaBudgetMM2),
	}
}

// WithFixedHW returns a copy of s with the HW genes frozen to hw.
func (s Space) WithFixedHW(hw arch.HW) Space {
	s.FixedHW = &hw
	s.Levels = hw.Levels()
	return s
}

// Validate checks the space is well-formed.
func (s Space) Validate() error {
	if len(s.Layers) == 0 {
		return errors.New("space: no layers")
	}
	if s.Levels < 1 {
		return fmt.Errorf("space: %d levels", s.Levels)
	}
	if s.MaxFanout < 1 && s.FixedHW == nil {
		return fmt.Errorf("space: MaxFanout = %d", s.MaxFanout)
	}
	return nil
}

// genesPerLevel is the per-level mapping gene count in the continuous
// codec: 1 spatial + 6 order keys + 6 tile values.
const genesPerLevel = 1 + int(workload.NumDims) + int(workload.NumDims)

// Dim returns the continuous vector length: one fanout gene per level
// (unless HW is fixed) plus the per-layer mapping genes.
func (s Space) Dim() int {
	d := len(s.Layers) * s.Levels * genesPerLevel
	if s.FixedHW == nil {
		d += s.Levels
	}
	return d
}

// logScale maps u∈[0,1] onto an integer in [1, max] with logarithmic
// resolution, so that small tiles/fanouts (where latency is most
// sensitive) get fine granularity.
func logScale(u float64, max int) int {
	if max <= 1 {
		return 1
	}
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	v := math.Exp(u * math.Log(float64(max)+0.5))
	n := int(v)
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	return n
}

// Decode converts a continuous vector into a legal genome. Vectors of the
// wrong length are an error; all other values decode to something valid
// (mappings are repaired), which keeps generic optimizers from wasting
// samples on structurally broken points.
func (s Space) Decode(x []float64) (Genome, error) {
	if len(x) != s.Dim() {
		return Genome{}, fmt.Errorf("space: vector length %d, want %d", len(x), s.Dim())
	}
	var g Genome
	i := 0
	if s.FixedHW != nil {
		g.Fanouts = append([]int(nil), s.FixedHW.Fanouts...)
	} else {
		g.Fanouts = make([]int, s.Levels)
		for l := 0; l < s.Levels; l++ {
			g.Fanouts[l] = logScale(x[i], s.MaxFanout)
			i++
		}
	}
	g.Maps = make([]mapping.Mapping, len(s.Layers))
	for li, layer := range s.Layers {
		m := mapping.Mapping{Levels: make([]mapping.Level, s.Levels)}
		for l := 0; l < s.Levels; l++ {
			lv := &m.Levels[l]
			sp := int(x[i] * float64(workload.NumDims))
			if sp >= int(workload.NumDims) {
				sp = int(workload.NumDims) - 1
			}
			if sp < 0 {
				sp = 0
			}
			lv.Spatial = workload.Dim(sp)
			i++
			var keys [workload.NumDims]float64
			for d := 0; d < int(workload.NumDims); d++ {
				keys[d] = x[i]
				i++
			}
			lv.Order = mapping.OrderFromKeys(keys)
			for _, d := range workload.AllDims {
				lv.Tiles[d] = logScale(x[i], layer.Dim(d))
				i++
			}
		}
		m.RepairInPlace(layer) // m is freshly built and owned
		g.Maps[li] = m
	}
	return g, nil
}

// Random generates a random genome directly (used to seed the genetic
// engines); levels may exceed the codec depth when DiGamma has grown the
// hierarchy.
func (s Space) Random(rng *rand.Rand, levels int) Genome {
	if levels < 1 {
		levels = s.Levels
	}
	var g Genome
	g.Fanouts = make([]int, levels)
	if s.FixedHW != nil && len(s.FixedHW.Fanouts) == levels {
		copy(g.Fanouts, s.FixedHW.Fanouts)
	} else {
		for l := range g.Fanouts {
			g.Fanouts[l] = 1 + rng.Intn(max(1, s.MaxFanout))
		}
	}
	g.Maps = make([]mapping.Mapping, len(s.Layers))
	for li, layer := range s.Layers {
		g.Maps[li] = mapping.Random(rng, layer, levels)
	}
	return g
}

// Repair returns a genome with every mapping made legal for its layer and
// fanouts clamped to [1, MaxFanout]. Already-canonical genomes — the common
// case on the search hot path, where the engine has repaired every child it
// breeds before evaluation — are returned as-is without cloning; otherwise
// only the offending gene blocks are copied. The result may therefore share
// per-layer blocks with g, so callers must not mutate g afterwards.
func (s Space) Repair(g Genome) Genome {
	out := g

	// HW genes: frozen in Fixed-HW mode, clamped to [1, MaxFanout] otherwise.
	if s.FixedHW != nil {
		if !slices.Equal(g.Fanouts, s.FixedHW.Fanouts) {
			out.Fanouts = append([]int(nil), s.FixedHW.Fanouts...)
		}
	} else {
		limit := s.MaxFanout
		for l, f := range g.Fanouts {
			if f >= 1 && (limit <= 0 || f <= limit) {
				continue
			}
			out.Fanouts = append([]int(nil), g.Fanouts...)
			for i := l; i < len(out.Fanouts); i++ {
				out.Fanouts[i] = max(out.Fanouts[i], 1)
				if limit > 0 {
					out.Fanouts[i] = min(out.Fanouts[i], limit)
				}
			}
			break
		}
	}

	// Mapping genes: copy-on-write — a layer block already legal at the
	// right clustering depth is shared, everything else is cloned and fixed.
	shared := true
	for li, layer := range s.Layers {
		m := out.Maps[li]
		if len(m.Levels) == len(out.Fanouts) && m.Validate(layer) == nil {
			continue
		}
		if shared {
			out.Maps = append([]mapping.Mapping(nil), g.Maps...)
			shared = false
		}
		// Align mapping depth with the HW genes.
		if len(m.Levels) != len(out.Fanouts) {
			m = m.Clone()
			for len(m.Levels) < len(out.Fanouts) {
				top := m.Levels[len(m.Levels)-1]
				top.Tiles = layer.Dims()
				m.Levels = append(m.Levels, top)
			}
			if len(m.Levels) > len(out.Fanouts) {
				m.Levels = m.Levels[:len(out.Fanouts)]
			}
		}
		out.Maps[li] = m.Repair(layer)
	}
	return out
}
