package space

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"digamma/internal/arch"
	"digamma/internal/workload"
)

func testSpace(t *testing.T) Space {
	t.Helper()
	m, err := workload.ByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	return New(m, arch.Edge())
}

func TestSpaceDim(t *testing.T) {
	s := testSpace(t)
	want := 2 + len(s.Layers)*2*13
	if got := s.Dim(); got != want {
		t.Errorf("Dim = %d, want %d", got, want)
	}
	fixed := s.WithFixedHW(arch.HW{Fanouts: []int{8, 8}, BufBytes: []int64{1024, 65536}})
	if got := fixed.Dim(); got != want-2 {
		t.Errorf("fixed-HW Dim = %d, want %d", got, want-2)
	}
}

func TestSpaceValidate(t *testing.T) {
	s := testSpace(t)
	if err := s.Validate(); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
	if err := (Space{}).Validate(); err == nil {
		t.Error("empty space accepted")
	}
	bad := s
	bad.Levels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-level space accepted")
	}
	bad2 := s
	bad2.MaxFanout = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero-fanout space accepted")
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	s := testSpace(t)
	if _, err := s.Decode(make([]float64, 3)); err == nil {
		t.Error("wrong-length vector accepted")
	}
}

// Every continuous vector must decode to a structurally legal genome.
func TestDecodeAlwaysLegal(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, s.Dim())
		for i := range x {
			// Include out-of-box values: optimizers clip, but decode must
			// survive anything.
			x[i] = rng.Float64()*1.4 - 0.2
		}
		g, err := s.Decode(x)
		if err != nil {
			t.Fatal(err)
		}
		if g.Levels() != 2 {
			t.Fatalf("decoded %d levels", g.Levels())
		}
		for l, f := range g.Fanouts {
			if f < 1 || f > s.MaxFanout {
				t.Fatalf("fanout[%d] = %d out of [1,%d]", l, f, s.MaxFanout)
			}
		}
		for li, m := range g.Maps {
			if err := m.Validate(s.Layers[li]); err != nil {
				t.Fatalf("trial %d layer %d: %v", trial, li, err)
			}
		}
	}
}

func TestDecodeFixedHWUsesFrozenFanouts(t *testing.T) {
	s := testSpace(t)
	hw := arch.HW{Fanouts: []int{16, 32}, BufBytes: []int64{2048, 1 << 20}}
	fs := s.WithFixedHW(hw)
	x := make([]float64, fs.Dim())
	for i := range x {
		x[i] = 0.5
	}
	g, err := fs.Decode(x)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fanouts[0] != 16 || g.Fanouts[1] != 32 {
		t.Errorf("fixed-HW fanouts = %v", g.Fanouts)
	}
}

func TestLogScale(t *testing.T) {
	if logScale(0, 100) != 1 {
		t.Errorf("logScale(0) = %d, want 1", logScale(0, 100))
	}
	if logScale(1, 100) != 100 {
		t.Errorf("logScale(1) = %d, want 100", logScale(1, 100))
	}
	if logScale(0.5, 1) != 1 {
		t.Error("logScale with max=1 must be 1")
	}
	// Monotone non-decreasing in u.
	prev := 0
	for u := 0.0; u <= 1.0; u += 0.01 {
		v := logScale(u, 64)
		if v < prev {
			t.Fatalf("logScale not monotone at u=%.2f: %d < %d", u, v, prev)
		}
		prev = v
	}
}

// Property: logScale stays in range for arbitrary inputs.
func TestLogScaleProperty(t *testing.T) {
	f := func(u float64, rawMax uint16) bool {
		max := int(rawMax)%512 + 1
		v := logScale(u, max)
		return v >= 1 && v <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRandomGenomeLegal(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		levels := 2 + trial%2
		g := s.Random(rng, levels)
		if g.Levels() != levels {
			t.Fatalf("Random levels = %d, want %d", g.Levels(), levels)
		}
		for li, m := range g.Maps {
			if err := m.Validate(s.Layers[li]); err != nil {
				t.Fatalf("random genome invalid: %v", err)
			}
		}
	}
}

func TestRepairAlignsLevels(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(3))
	g := s.Random(rng, 2)
	// Grow HW genes without touching the mappings.
	g.Fanouts = append(g.Fanouts, 4)
	r := s.Repair(g)
	for li, m := range r.Maps {
		if m.NumLevels() != 3 {
			t.Fatalf("layer %d has %d levels after repair", li, m.NumLevels())
		}
		if err := m.Validate(s.Layers[li]); err != nil {
			t.Fatal(err)
		}
	}
	// Shrink.
	r.Fanouts = r.Fanouts[:2]
	r2 := s.Repair(r)
	if r2.Maps[0].NumLevels() != 2 {
		t.Errorf("shrink repair left %d levels", r2.Maps[0].NumLevels())
	}
}

func TestRepairClampsFanouts(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(4))
	g := s.Random(rng, 2)
	g.Fanouts[0] = -3
	g.Fanouts[1] = s.MaxFanout * 10
	r := s.Repair(g)
	if r.Fanouts[0] != 1 {
		t.Errorf("negative fanout repaired to %d", r.Fanouts[0])
	}
	if r.Fanouts[1] != s.MaxFanout {
		t.Errorf("oversized fanout repaired to %d, want %d", r.Fanouts[1], s.MaxFanout)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(5))
	g := s.Random(rng, 2)
	c := g.Clone()
	c.Fanouts[0] = 999
	c.Maps[0].Levels[0].Tiles[workload.K] = 999
	if g.Fanouts[0] == 999 || g.Maps[0].Levels[0].Tiles[workload.K] == 999 {
		t.Error("Clone shares storage")
	}
}

func TestGenomeString(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(5))
	g := s.Random(rng, 2)
	str := g.String()
	if !strings.Contains(str, "PEs=") || !strings.Contains(str, "layer 0") {
		t.Errorf("Genome.String = %q", str)
	}
	if g.NumPEs() != g.Fanouts[0]*g.Fanouts[1] {
		t.Error("NumPEs mismatch")
	}
}

func TestDecodeDeterministic(t *testing.T) {
	s := testSpace(t)
	x := make([]float64, s.Dim())
	for i := range x {
		x[i] = float64(i%7) / 7
	}
	g1, err1 := s.Decode(x)
	g2, err2 := s.Decode(x)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if g1.String() != g2.String() {
		t.Error("Decode not deterministic")
	}
}
