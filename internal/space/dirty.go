package space

// Dirty records which parts of a child genome differ from the breeding
// parent it was derived from — the operator-locality contract behind the
// delta evaluation path. DiGamma's domain-aware operators each perturb a
// known slice of the design point (one layer's loop order, a few layers'
// tiles, one HW gene), so the breeder can mark exactly what it touched and
// the evaluator can clone the parent's per-layer analyses for everything
// else, skipping even the cache-key hash for clean layers.
//
// Marking is conservative by construction: an operator that *may* have
// changed a block marks it dirty, and anything that invalidates every
// per-layer analysis at once — HW genes (they key every layer) or a
// structural grow/age (the clustering depth changes) — collapses the set
// to "everything dirty", which routes the child down the ordinary full
// evaluation. Extra dirty bits only cost speed; a missing one would cost
// correctness, so only the operators themselves may clear the zero value.
//
// The per-layer set is a 64-bit mask; models with more unique layers than
// that (none in the zoo) degrade soundly to all-dirty.
type Dirty struct {
	hw   bool
	all  bool
	mask uint64
}

// dirtyMaskBits is the per-layer capacity of the bitmask.
const dirtyMaskBits = 64

// MarkHW records that the HW genes (fanouts) changed. Every per-layer
// cache key includes the fanout vector, so no parent analysis survives.
func (d *Dirty) MarkHW() { d.hw = true }

// MarkAll records a structural change (grow/age, or unknown provenance):
// every layer block is dirty regardless of the mask.
func (d *Dirty) MarkAll() { d.all = true }

// MarkLayer records that layer li's mapping block changed. Indices beyond
// the mask capacity degrade to MarkAll.
func (d *Dirty) MarkLayer(li int) {
	if li >= dirtyMaskBits {
		d.all = true
		return
	}
	d.mask |= 1 << uint(li)
}

// HW reports whether the HW genes changed.
func (d Dirty) HW() bool { return d.hw }

// All reports whether every layer was structurally invalidated.
func (d Dirty) All() bool { return d.all }

// Full reports whether no per-layer reuse is possible — the delta path
// must fall back to a full evaluation.
func (d Dirty) Full() bool { return d.hw || d.all }

// Layer reports whether layer li's mapping block is dirty.
func (d Dirty) Layer(li int) bool {
	if d.all || d.hw {
		return true
	}
	if li >= dirtyMaskBits {
		return true
	}
	return d.mask&(1<<uint(li)) != 0
}
