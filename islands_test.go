package digamma

import (
	"errors"
	"testing"
)

// TestIslandOptionsValidate: island knobs fail fast with typed errors —
// serving layers map them to HTTP 400 before queueing anything.
func TestIslandOptionsValidate(t *testing.T) {
	if err := (Options{IslandProfiles: []string{"warp"}}).Validate(); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("unknown profile: err = %v, want ErrUnknownProfile", err)
	}
	if err := (Options{Islands: -2}).Validate(); !errors.Is(err, ErrBadIslands) {
		t.Errorf("negative islands: err = %v, want ErrBadIslands", err)
	}
	if err := (Options{MigrateEvery: -1}).Validate(); !errors.Is(err, ErrBadIslands) {
		t.Errorf("negative migrate-every: err = %v, want ErrBadIslands", err)
	}
	if err := (Options{Islands: 4, MigrateEvery: 2,
		IslandProfiles: []string{"default", "explorer", "exploiter", "scout"}}).Validate(); err != nil {
		t.Errorf("valid island options rejected: %v", err)
	}
	if got := IslandProfiles(); len(got) != 4 {
		t.Errorf("IslandProfiles() = %v", got)
	}
}

// TestIslandFacadeDeterministic: the facade's island search is a pure
// function of its options — repeat runs and worker counts never change
// the design point, for both co-opt and the fixed-HW mapper.
func TestIslandFacadeDeterministic(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Budget: 400, Seed: 9, Islands: 3, MigrateEvery: 2,
		IslandProfiles: []string{"default", "explorer", "scout"}}

	a, err := Optimize(model, EdgePlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	repeat := opts
	repeat.Workers = 1
	b, err := Optimize(model, EdgePlatform(), repeat)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Fitness != b.Fitness {
		t.Errorf("island run depends on workers: %.9e vs %.9e cycles", a.Cycles, b.Cycles)
	}

	single, err := Optimize(model, EdgePlatform(), Options{Budget: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Valid || !single.Valid {
		t.Fatalf("invalid results: islands=%v single=%v", a.Valid, single.Valid)
	}

	hw := a.HW
	mapped, err := OptimizeMapping(model, EdgePlatform(), hw, Options{Budget: 300, Seed: 4, Islands: 2})
	if err != nil {
		t.Fatal(err)
	}
	for l, f := range hw.Fanouts {
		if mapped.HW.Fanouts[l] != f {
			t.Errorf("island GAMMA changed the fixed HW: %v vs %v", mapped.HW.Fanouts, hw.Fanouts)
			break
		}
	}
}
