package digamma

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	if err := (Options{Algorithm: "CMA", Objective: EDP}).Validate(); err != nil {
		t.Errorf("CMA/EDP invalid: %v", err)
	}
	err := Options{Algorithm: "SimulatedAnnealing"}.Validate()
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("bad algorithm: %v, want ErrUnknownAlgorithm", err)
	}
	err = Options{Objective: Objective(99)}.Validate()
	if !errors.Is(err, ErrUnknownObjective) {
		t.Errorf("bad objective: %v, want ErrUnknownObjective", err)
	}
}

// TestOptimizeRejectsUpFront: a bad algorithm fails before any search
// machinery runs, with the typed error (previously it surfaced deep
// inside the run as an untyped message).
func TestOptimizeRejectsUpFront(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = Optimize(model, EdgePlatform(), Options{Algorithm: "nope", Budget: 1_000_000})
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("got %v, want ErrUnknownAlgorithm", err)
	}
	if time.Since(start) > time.Second {
		t.Error("validation did not fail fast")
	}
	if _, err = Optimize(model, EdgePlatform(), Options{Objective: Objective(7)}); !errors.Is(err, ErrUnknownObjective) {
		t.Errorf("got %v, want ErrUnknownObjective", err)
	}
	hw := HW{Fanouts: []int{16, 8}, BufBytes: []int64{4096, 524288}}
	if _, err = OptimizeMapping(model, EdgePlatform(), hw, Options{Algorithm: "nope"}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("OptimizeMapping: got %v, want ErrUnknownAlgorithm", err)
	}
	if _, err = OptimizeMulti([]Model{model}, nil, EdgePlatform(), Options{Algorithm: "nope"}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("OptimizeMulti: got %v, want ErrUnknownAlgorithm", err)
	}
}

// TestOptimizeContextMatchesOptimize: plumbing a live context and a
// progress callback changes nothing about the result.
func TestOptimizeContextMatchesOptimize(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Budget: 300, Seed: 4}
	ref, err := Optimize(model, EdgePlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var events []Progress
	opts.OnProgress = func(p Progress) { events = append(events, p) }
	got, err := OptimizeContext(context.Background(), model, EdgePlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != ref.Cycles || got.Fitness != ref.Fitness || got.HW.String() != ref.HW.String() {
		t.Errorf("context run diverged: %v/%v vs %v/%v", got.Cycles, got.Fitness, ref.Cycles, ref.Fitness)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if last.Samples != 300 || last.Budget != 300 || last.BestFitness != got.Fitness {
		t.Errorf("final progress %+v", last)
	}
	// The engine's delta-path and pool counters thread through the facade:
	// a default DiGamma run scores most children incrementally and serves
	// buffers from the recycling pool.
	if last.DeltaEvals == 0 || last.LayersReused == 0 {
		t.Errorf("delta counters missing from facade progress: %+v", last)
	}
	if last.PoolGets == 0 || last.PoolReuses == 0 {
		t.Errorf("pool counters missing from facade progress: %+v", last)
	}
}

// TestOptimizeContextCancel: cancellation mid-search surfaces the context
// error and returns no partial result.
func TestOptimizeContextCancel(t *testing.T) {
	model, err := LoadModel("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Budget: 100_000_000}
	opts.OnProgress = func(Progress) { cancel() }
	ev, err := OptimizeContext(ctx, model, EdgePlatform(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if ev != nil {
		t.Error("cancelled search returned a result")
	}
}

// TestOptimizeContextDeadline: a deadline bounds the search like a cancel.
func TestOptimizeContextDeadline(t *testing.T) {
	model, err := LoadModel("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = OptimizeContext(ctx, model, EdgePlatform(), Options{Budget: 100_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestBaselineContextCancel: the vector baselines honor cancellation too,
// draining their budget instead of evaluating it.
func TestBaselineContextCancel(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Algorithm: "Random", Budget: 50_000_000}
	fired := false
	opts.OnProgress = func(p Progress) {
		if !fired && p.Samples > 0 {
			fired = true
			cancel()
		}
	}
	start := time.Now()
	_, err = OptimizeContext(ctx, model, EdgePlatform(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("baseline cancel did not drain quickly")
	}
	if !fired {
		t.Error("baseline emitted no progress")
	}
}
