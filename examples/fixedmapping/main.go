// Fixed-Mapping use-case (the paper's second design constraint): you have
// a manually tuned mapping style — here NVDLA-like — and want to size the
// hardware for it: how many PEs, how much buffer? The grid-search HW
// optimizer sweeps PE count, aspect ratio and buffer split under the area
// budget, evaluating the fixed style on each candidate.
package main

import (
	"fmt"
	"log"

	"digamma"
	"digamma/internal/coopt"
	"digamma/internal/schemes"
)

func main() {
	platform := digamma.EdgePlatform()

	for _, name := range []string{"resnet18", "dlrm"} {
		model, err := digamma.LoadModel(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := schemes.GridSearchHW(schemes.DLALike, model, platform, coopt.Latency)
		if err != nil {
			log.Fatal(err)
		}
		pe, buf := res.Best.Area.Ratio()
		fmt.Printf("%s with a dla-like mapping (grid over %d HW configs):\n", name, res.Explored)
		fmt.Printf("  best HW:   %s\n", res.HW)
		fmt.Printf("  area:      %.4f mm² (PE:buffer = %d:%d)\n", res.Best.Area.Total(), pe, buf)
		fmt.Printf("  latency:   %.3e cycles\n\n", res.Best.Cycles)
	}
	fmt.Println("Note how the memory-bound DLRM pulls the sizing toward buffers,")
	fmt.Println("while ResNet-18 favors compute — the manual-tuning burden DiGamma removes.")
}
