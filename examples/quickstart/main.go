// Quickstart: co-optimize an edge accelerator for ResNet-18 with DiGamma
// and print the resulting design point. This is the 20-line happy path of
// the public API.
package main

import (
	"fmt"
	"log"

	"digamma"
)

func main() {
	model, err := digamma.LoadModel("resnet18")
	if err != nil {
		log.Fatal(err)
	}

	best, err := digamma.Optimize(model, digamma.EdgePlatform(), digamma.Options{
		Budget: 2000, // design points the search may evaluate
		Seed:   1,    // deterministic run
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ResNet-18 on the edge budget (0.2 mm²):\n")
	fmt.Printf("  hardware:  %s\n", best.HW)
	fmt.Printf("  area:      %s\n", best.Area)
	fmt.Printf("  latency:   %.3e cycles\n", best.Cycles)
	fmt.Printf("  energy:    %.3e pJ\n", best.EnergyPJ)
	fmt.Printf("  valid:     %v\n", best.Valid)
}
