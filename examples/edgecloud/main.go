// Edge vs cloud: co-optimizes the same model under both platform budgets
// and contrasts the designs DiGamma picks — the cloud design should spend
// its 35× larger budget on both a bigger array and deeper buffers, and
// land on a correspondingly lower latency (one slice of the paper's
// Fig. 5 story).
package main

import (
	"fmt"
	"log"

	"digamma"
)

func main() {
	model, err := digamma.LoadModel("resnet18")
	if err != nil {
		log.Fatal(err)
	}

	for _, platform := range []digamma.Platform{digamma.EdgePlatform(), digamma.CloudPlatform()} {
		best, err := digamma.Optimize(model, platform, digamma.Options{Budget: 2500, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		pe, buf := best.Area.Ratio()
		fmt.Printf("%-6s budget %.1f mm²:\n", platform.Name, platform.AreaBudgetMM2)
		fmt.Printf("  %s\n", best.HW)
		fmt.Printf("  area %.4f mm² (PE:buffer = %d:%d)\n", best.Area.Total(), pe, buf)
		fmt.Printf("  latency %.3e cycles, energy %.3e pJ\n\n", best.Cycles, best.EnergyPJ)
	}
}
