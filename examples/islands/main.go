// Island-model search: sweeps per-island operator profiles on
// mobilenetv2 at edge resources, all at the same sampling budget. The
// single-population engine is the reference; each island configuration
// partitions the same global population into a migration ring — K
// semi-isolated populations trading their elites every few generations —
// so equal budget buys equal search depth plus the diversity of
// heterogeneous operator rates (explore-heavy, exploit-heavy, and a
// bound-fidelity scout that screens cheaply and re-scores its elites on
// the full model before they migrate).
//
// Results are a pure function of (Seed, Islands, MigrateEvery,
// IslandProfiles): re-running any row reproduces it bit for bit at any
// -workers setting.
package main

import (
	"fmt"
	"log"

	"digamma"
)

func main() {
	model, err := digamma.LoadModel("mobilenetv2")
	if err != nil {
		log.Fatal(err)
	}
	platform := digamma.EdgePlatform()

	const budget = 4000
	type row struct {
		name string
		opts digamma.Options
	}
	rows := []row{
		{"single population", digamma.Options{}},
		{"2 islands (default×2)", digamma.Options{Islands: 2}},
		{"2 islands (default+exploiter)", digamma.Options{
			Islands: 2, IslandProfiles: []string{"default", "exploiter"}}},
		{"4 islands (default×4)", digamma.Options{Islands: 4}},
		{"4 islands (mixed profiles)", digamma.Options{
			Islands: 4, IslandProfiles: []string{"default", "explorer", "exploiter", "default"}}},
		{"4 islands (with scout)", digamma.Options{
			Islands: 4, IslandProfiles: []string{"default", "explorer", "exploiter", "scout"}}},
	}

	// A GA's best-at-budget is a noisy statistic: average a few seeds so
	// the comparison reflects the configurations, not one lucky draw.
	const seeds = 5
	fmt.Printf("mobilenetv2 @ %s, budget %d samples, mean best over %d seeds (profiles: %v)\n\n",
		platform.Name, budget, seeds, digamma.IslandProfiles())
	var base float64
	for _, r := range rows {
		mean := 0.0
		var hw digamma.HW
		for s := 1; s <= seeds; s++ {
			o := r.opts
			o.Budget = budget
			o.Seed = int64(s)
			best, err := digamma.Optimize(model, platform, o)
			if err != nil {
				log.Fatal(err)
			}
			mean += best.Cycles / seeds
			hw = best.HW
		}
		if base == 0 {
			base = mean
		}
		fmt.Printf("%-30s %.4e cycles  (%.3f vs single)  e.g. %s\n",
			r.name, mean, mean/base, hw)
	}
	fmt.Println("\nLower is better; ratios < 1 mean the ring beat the single population at equal budget.")
}
