// Multi-model co-optimization: one accelerator sized for BOTH a
// compute-bound vision model and a memory-bound recommendation model —
// the paper's "takes in any DNN model(s)" input. The jointly-optimized
// design is compared against specializing for either model alone, showing
// the compromise a shared deployment forces.
package main

import (
	"fmt"
	"log"

	"digamma"
)

func main() {
	vision, err := digamma.LoadModel("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	recsys, err := digamma.LoadModel("dlrm")
	if err != nil {
		log.Fatal(err)
	}
	platform := digamma.EdgePlatform()
	opts := digamma.Options{Budget: 2000, Seed: 11}

	// Specialists.
	vOnly, err := digamma.Optimize(vision, platform, opts)
	if err != nil {
		log.Fatal(err)
	}
	rOnly, err := digamma.Optimize(recsys, platform, opts)
	if err != nil {
		log.Fatal(err)
	}

	// One chip for both workloads, equally weighted.
	joint, err := digamma.OptimizeMulti(
		[]digamma.Model{vision, recsys}, nil, platform, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Specialist for resnet18:")
	fmt.Printf("  %s → %.3e cycles\n", vOnly.HW, vOnly.Cycles)
	fmt.Println("Specialist for dlrm:")
	fmt.Printf("  %s → %.3e cycles\n", rOnly.HW, rOnly.Cycles)
	fmt.Println("Joint accelerator for both:")
	fmt.Printf("  %s\n", joint.HW)
	pe, buf := joint.Area.Ratio()
	fmt.Printf("  area %.4f mm² (PE:buffer = %d:%d), combined fitness %.3e cycles\n",
		joint.Area.Total(), pe, buf, joint.Cycles)
	fmt.Println("\nThe joint design balances the vision model's appetite for PEs")
	fmt.Println("against the recommendation model's streaming working set.")
}
