// Pareto exploration: instead of a single latency-optimal design, sweep
// the latency↔energy trade-off for MobileNetV2 on the edge budget with a
// multi-objective DiGamma run. Each front point is a complete accelerator
// (HW + mapping) a designer could pick depending on the power envelope.
package main

import (
	"fmt"
	"log"

	"digamma"
)

func main() {
	model, err := digamma.LoadModel("mobilenetv2")
	if err != nil {
		log.Fatal(err)
	}

	front, err := digamma.ParetoFront(model, digamma.EdgePlatform(),
		[]digamma.Objective{digamma.Latency, digamma.Energy},
		digamma.Options{Budget: 2500, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Latency-energy Pareto front for MobileNetV2 @ edge (%d designs):\n\n", len(front))
	fmt.Printf("%-34s %14s %14s %8s\n", "hardware", "cycles", "energy (pJ)", "PE:Buf")
	for _, ev := range front {
		pe, buf := ev.Area.Ratio()
		fmt.Printf("%-34s %14.3e %14.3e %5d:%d\n", ev.HW, ev.Cycles, ev.EnergyPJ, pe, buf)
	}
	fmt.Println("\nEvery row is non-dominated: moving up the list trades energy for speed.")
}
