// Fixed-HW use-case (the paper's first design constraint): you already
// built an accelerator and only want the best mapping for a new model —
// exactly what the GAMMA mapper does. We map MobileNetV2 onto a fixed
// 16×16 array and compare against two manual mapping styles on the same
// silicon.
package main

import (
	"fmt"
	"log"

	"digamma"
	"digamma/internal/coopt"
	"digamma/internal/schemes"
)

func main() {
	model, err := digamma.LoadModel("mobilenetv2")
	if err != nil {
		log.Fatal(err)
	}
	platform := digamma.EdgePlatform()

	// The accelerator we're stuck with: 256 PEs, 2 KB per-PE L1, 128 KB L2.
	hw := digamma.HW{
		Fanouts:  []int{16, 16},
		BufBytes: []int64{2 << 10, 128 << 10},
	}

	// Manual baselines: NVDLA-like and ShiDianNao-like mapping styles.
	layers := model.UniqueLayers()
	for _, style := range []schemes.MapStyle{schemes.DLALike, schemes.ShiLike} {
		maps := schemes.StyleMappings(style, hw.Defaults(), layers)
		ev, err := coopt.EvaluateMapping(layers, hw.Defaults(), maps, platform, coopt.Latency)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s latency %.3e cycles (valid=%v)\n", style, ev.Cycles, ev.Valid)
	}

	// GAMMA: search the mapping space for the same fixed silicon.
	best, err := digamma.OptimizeMapping(model, platform, hw, digamma.Options{Budget: 3000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s latency %.3e cycles (valid=%v)\n", "GAMMA", best.Cycles, best.Valid)
	fmt.Printf("\nsearched mapping of the heaviest layer:\n  %s\n", best.Genome.Maps[0])
}
