// Encoding walk-through: builds the paper's Fig. 3 example by hand — a
// two-level design point — encodes it as genes, decodes it back into an
// accelerator configuration, and reports what the evaluation block sees:
// derived minimum buffer sizes, area, latency and per-level data movement.
package main

import (
	"fmt"
	"log"

	"digamma/internal/arch"
	"digamma/internal/cost"
	"digamma/internal/mapping"
	"digamma/internal/workload"
)

func main() {
	// A mid-network ResNet-ish layer: K64 C32, 28×28 outputs, 3×3 kernel.
	layer := workload.Layer{
		Name: "conv", Type: workload.Conv,
		K: 64, C: 32, Y: 28, X: 28, R: 3, S: 3,
	}

	// The gene tables of Fig. 3(b): an L1-config describing a 16-wide 1-D
	// PE array parallelizing C, and an L2-config instantiating 4 such
	// arrays parallelizing K. Orders are the temporal loop nests, values
	// are tile sizes.
	m := mapping.Mapping{Levels: []mapping.Level{
		{ // L1-config: within a 1-D PE array
			Spatial: workload.C,
			Order:   order(workload.C, workload.K, workload.Y, workload.X, workload.R, workload.S),
			Tiles:   workload.Vector{4, 2, 2, 2, 3, 3},
		},
		{ // L2-config: across 1-D PE arrays
			Spatial: workload.K,
			Order:   order(workload.K, workload.C, workload.Y, workload.X, workload.R, workload.S),
			Tiles:   workload.Vector{16, 32, 7, 7, 3, 3},
		},
	}}
	hw := arch.HW{
		Fanouts:  []int{16, 4},              // π_L1=16 PEs per array, π_L2=4 arrays
		BufBytes: []int64{1 << 10, 1 << 18}, // capacities; co-opt derives these instead
	}

	fmt.Println("Encoded design point (the genes):")
	fmt.Printf("  π_L2=%d  π_L1=%d  (PE array: %dx%d = %d PEs)\n",
		hw.Fanouts[1], hw.Fanouts[0], hw.Fanouts[1], hw.Fanouts[0], hw.NumPEs())
	fmt.Printf("  %s\n\n", m)

	r, err := cost.Analyze(hw, m, layer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Decoded accelerator, as the evaluation block scores it:")
	fmt.Printf("  latency:            %.3e cycles (compute roofline %.3e)\n", r.Cycles, r.ComputeOnly)
	fmt.Printf("  PE utilization:     %.1f%%\n", r.Utilization*100)
	fmt.Printf("  DRAM traffic:       %.3e words\n", r.DRAMWords)
	for l, lv := range r.Levels {
		fmt.Printf("  level %d: occupancy %d/%d, min buffer W=%.0f I=%.0f O=%.0f words\n",
			l+1, lv.Occupancy, lv.Fanout,
			lv.BufferWords.Weights, lv.BufferWords.Inputs, lv.BufferWords.Outputs)
	}
	req := r.BufReqBytes(hw.Defaults().BytesPerWord)
	fmt.Printf("  buffer allocation (double-buffered): L1 %d B/PE, L2 %d B\n", req[0], req[1])
	fmt.Printf("  area with derived buffers: %s\n",
		arch.DefaultAreaModel().Area(arch.HW{Fanouts: hw.Fanouts, BufBytes: req}))
}

func order(ds ...workload.Dim) [workload.NumDims]workload.Dim {
	var o [workload.NumDims]workload.Dim
	copy(o[:], ds)
	return o
}
