// Command digammad serves DiGamma HW-Mapping co-optimization over HTTP:
// submit searches, stream per-generation progress as Server-Sent Events,
// cancel mid-run, and read results back from the deduplicating job store.
//
//	digammad -addr :8080
//	curl -s localhost:8080/v1/optimize -d '{"model":"resnet18","budget":4000}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -N  localhost:8080/v1/jobs/j000001/events
//	curl -s -X DELETE localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/metrics
//
// The -selftest mode is a ReqBench-style load generator: it fires N
// concurrent mixed requests (with deliberate duplicates) at a target
// server — or at an in-process one when no -target is given — and reports
// throughput and the dedup hit rate.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"digamma"
	"digamma/internal/dist"
	"digamma/internal/serve"
)

// parseTenantWeights turns the -tenant-weights flag ("gold=3,silver=1")
// into the scheduler's weight map. Tenants absent from the map weigh 1.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(kv, "=")
		w, err := strconv.Atoi(val)
		if !ok || name == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want name=weight, weight >= 1)", kv)
		}
		out[name] = w
	}
	return out, nil
}

// parseTenantCaps turns a cap flag ("8", "gold=32", "8,gold=32,trial=2",
// "8,gold=0") into a default plus per-tenant overrides: a bare integer is
// the default for every tenant, name=value entries override it — an
// explicit 0 override lifts the cap for that tenant while the default
// keeps binding the rest.
func parseTenantCaps(flagName, s string) (int, map[string]int, error) {
	if s == "" {
		return 0, nil, nil
	}
	def, sawDef := 0, false
	var per map[string]int
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			v, err := strconv.Atoi(kv)
			if err != nil || v < 0 {
				return 0, nil, fmt.Errorf("bad %s entry %q (want a cap >= 0 or tenant=cap)", flagName, kv)
			}
			if sawDef {
				return 0, nil, fmt.Errorf("bad %s %q: more than one default cap", flagName, s)
			}
			def, sawDef = v, true
			continue
		}
		v, err := strconv.Atoi(val)
		if name == "" || err != nil || v < 0 {
			return 0, nil, fmt.Errorf("bad %s entry %q (want tenant=cap, cap >= 0)", flagName, kv)
		}
		if per == nil {
			per = make(map[string]int)
		}
		if _, dup := per[name]; dup {
			return 0, nil, fmt.Errorf("bad %s %q: duplicate tenant %q", flagName, s, name)
		}
		per[name] = v
	}
	return def, per, nil
}

// splitList splits a comma-separated flag into its non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// writeAddrFile publishes the bound listen address for whoever spawned us
// (write-then-rename, so a polling reader never sees a torn file).
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runWorker serves the distributed island-search protocol (-worker mode):
// a coordinator digammad dials in, hands this process a shard of islands,
// and drives them in lockstep. SIGINT/SIGTERM closes the listener; any
// in-flight coordinator sessions fail and re-home to surviving workers.
func runWorker(addr, addrFile string, jobs int, logger *slog.Logger) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := writeAddrFile(addrFile, l.Addr().String()); err != nil {
			return err
		}
	}
	logger.Info("digammad worker listening", "addr", l.Addr().String())
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		logger.Info("worker shutting down", "cause", "signal")
		l.Close()
	}()
	return dist.Serve(l, dist.WorkerOptions{
		Workers: jobs,
		Log:     slog.NewLogLogger(logger.Handler(), slog.LevelInfo),
	})
}

// newLogger builds the process logger from the -log-level / -log-format
// flags. All digammad and serve-layer logging goes through it; "json"
// emits one machine-parseable object per line for log shippers.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		worker   = flag.Bool("worker", false, "run as a distributed-search worker: serve the dist island protocol on -addr instead of the HTTP API (see docs/dist-protocol.md)")
		distWk   = flag.String("dist-workers", "", "comma-separated digammad -worker addresses; eligible island searches shard across them, bit-identically to local runs (empty = in-process)")
		addrFile = flag.String("addr-file", "", "write the bound listen address to this file once listening (race-free discovery when spawning on port 0)")
		jobs     = flag.Int("jobs", 0, "concurrent search jobs (0 = all cores)")
		queue    = flag.Int("queue", 0, "queued-job bound before submits get 503 (0 = 256)")
		store    = flag.Int("store", 0, "retained terminal jobs before eviction (0 = 1024)")
		maxBud   = flag.Int("max-budget", 0, "per-request sampling-budget cap (0 = 1,000,000)")
		dataDir  = flag.String("data-dir", "", "durable store directory: WAL + results + checkpoints (empty = in-memory only, no crash recovery)")
		ckEvery  = flag.Int("checkpoint-every", 5, "generations between engine checkpoints when -data-dir is set (0 = only recover whole jobs, never mid-search)")
		deadline = flag.Duration("job-deadline", 0, "per-job wall-clock bound; exceeded jobs finish degraded with their best-so-far result (0 = none)")
		anaDir   = flag.String("analysis-dir", "", "shared analysis store directory (empty = <data-dir>/evalstore when -data-dir is set, else memory-only)")
		noShared = flag.Bool("no-shared-analysis", false, "disable the cross-request shared analysis tier (each search then caches only within itself)")
		waitCap  = flag.Duration("wait-cap", 0, "cap on ?wait= long-polls; an expired window returns the current status with 200 (0 = 30s)")
		weights  = flag.String("tenant-weights", "", "per-tenant scheduler weights, e.g. gold=3,silver=1 (absent tenants weigh 1)")
		tJobCap  = flag.String("tenant-cap", "", "per-tenant queued+running job cap, 429 + Retry-After past it: a default and/or tenant=cap overrides, e.g. \"4\" or \"4,gold=16,trial=1\" (empty or 0 = unlimited; an explicit tenant=0 lifts the cap for that tenant)")
		tBudCap  = flag.String("tenant-budget-cap", "", "per-tenant outstanding evaluation-budget cap, 429 above it; same default,tenant=cap form as -tenant-cap")
		quantum  = flag.Int("sched-quantum", 0, "evals replenished per weight unit per scheduling rotation (0 = 2000)")
		maxBatch = flag.Int("max-batch", 0, "max items per POST /v1/batches, 400 above it (0 = 256)")
		tSeries  = flag.Int("tenant-series", 0, "distinct tenant labels on /metrics before aggregation into the overflow label (0 = 32)")
		noWarm   = flag.Bool("no-warm", false, "selftest: skip the near-duplicate shared-analysis phase")
		selftest = flag.Bool("selftest", false, "run the load-generator self-test and exit")
		requests = flag.Int("requests", 24, "selftest: total requests to fire")
		clients  = flag.Int("clients", 8, "selftest: concurrent clients")
		budget   = flag.Int("budget", 300, "selftest: sampling budget per request")
		islands  = flag.Int("islands", 0, "selftest: run the request mix on the K-island engine (<=1 = single population)")
		tenants  = flag.Int("tenants", 0, "selftest: spread traffic across N tenants and run the two-tenant contention phase (0 = single-tenant legacy traffic)")
		batchN   = flag.Int("batch", 0, "selftest: also submit an N-item near-duplicate sweep as one POST /v1/batches (0 = skip)")
		sustain  = flag.Duration("sustain", 0, "selftest: sustained-load phase duration, open-loop submits at -rate (0 = skip)")
		rate     = flag.Float64("rate", 4, "selftest: sustained-phase submit rate, requests per second")
		p95Max   = flag.Duration("p95-max", 0, "selftest: fail when the sustained phase's p95 end-to-end latency exceeds this (0 = report only)")
		benchLn  = flag.Bool("bench-lines", false, "selftest: emit the sustained phase's latency as a Go-benchmark-format row (mean ns/op + p95_ns/op + p99_ns/op) for scripts/bench.sh")
		distSmok = flag.Bool("dist-smoke", false, "selftest: spawn two -worker copies of this binary, kill one mid-search, and require the distributed result to match the local one bit for bit")
		target   = flag.String("target", "", "selftest: base URL of a running digammad (empty = in-process server)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (CPU/heap profiling of the serving hot path)")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFmt   = flag.String("log-format", "text", "log encoding: text or json")
		trSpans  = flag.Int("trace-spans", 0, "per-job flight-recorder span capacity (0 = default 4096, negative disables tracing and /trace + /report)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "digammad:", err)
		os.Exit(1)
	}

	if *worker {
		if err := runWorker(*addr, *addrFile, *jobs, logger); err != nil {
			fmt.Fprintln(os.Stderr, "digammad: worker:", err)
			os.Exit(1)
		}
		return
	}

	tw, err := parseTenantWeights(*weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "digammad:", err)
		os.Exit(1)
	}
	jcDef, jcPer, err := parseTenantCaps("-tenant-cap", *tJobCap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "digammad:", err)
		os.Exit(1)
	}
	bcDef, bcPer, err := parseTenantCaps("-tenant-budget-cap", *tBudCap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "digammad:", err)
		os.Exit(1)
	}
	cfg := serve.Config{
		Workers: *jobs, QueueDepth: *queue, StoreLimit: *store, MaxBudget: *maxBud,
		CheckpointEvery: *ckEvery, JobDeadline: *deadline,
		TraceSpans: *trSpans, Log: logger,
		TenantWeights: tw,
		TenantJobCap:  jcDef, TenantJobCaps: jcPer,
		TenantBudgetCap: bcDef, TenantBudgetCaps: bcPer,
		SchedQuantum: *quantum, WaitCap: *waitCap,
		MaxBatchItems: *maxBatch, MaxTenantSeries: *tSeries,
		DistWorkers: splitList(*distWk),
	}
	if *dataDir != "" {
		ds, err := serve.OpenDiskStore(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "digammad: opening data dir:", err)
			os.Exit(1)
		}
		cfg.Store = ds
	}
	// The shared analysis tier persists next to the job store by default,
	// so the warm tier survives restarts whenever durability is on at all;
	// -analysis-dir splits it out (e.g. faster disk), -no-shared-analysis
	// turns cross-request reuse off entirely.
	cfg.NoSharedAnalysis = *noShared
	if dir := *anaDir; !*noShared {
		if dir == "" && *dataDir != "" {
			dir = filepath.Join(*dataDir, "evalstore")
		}
		if dir != "" {
			as, err := digamma.OpenAnalysisStore(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "digammad: opening analysis store:", err)
				os.Exit(1)
			}
			cfg.Analysis = as
			defer as.Close()
			logger.Info("analysis store open", "dir", dir,
				"loaded", as.Stats().Loaded, "results", as.Stats().Results)
		}
	}
	if *selftest {
		opts := selftestOpts{
			Target: *target, Total: *requests, Clients: *clients,
			Budget: *budget, Islands: *islands, Warm: !*noWarm,
			Tenants: *tenants, Batch: *batchN,
			Sustain: *sustain, Rate: *rate, P95Max: *p95Max,
			BenchLines: *benchLn, DistSmoke: *distSmok,
		}
		// The contention phase wants asymmetric weights so fairness has
		// something to measure; give the in-process server 3:1 unless the
		// operator chose their own.
		if opts.Tenants >= 2 && *target == "" && cfg.TenantWeights == nil {
			cfg.TenantWeights = map[string]int{"gold": 3, "silver": 1}
		}
		if err := runSelftest(cfg, opts); err != nil {
			fmt.Fprintln(os.Stderr, "digammad: selftest:", err)
			os.Exit(1)
		}
		return
	}

	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "digammad:", err)
		os.Exit(1)
	}
	handler := s.Handler()
	if *pprofOn {
		// Profiling endpoints ride the API listener behind an explicit
		// flag: off by default (they expose internals and cost a mutex
		// hit per sample), one flag away when a hot-path regression needs
		// `go tool pprof http://host/debug/pprof/profile` against the
		// serving deployment.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "digammad:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, l.Addr().String()); err != nil {
			fmt.Fprintln(os.Stderr, "digammad:", err)
			os.Exit(1)
		}
	}
	logger.Info("digammad listening", "addr", l.Addr().String())

	srv := &http.Server{Handler: handler}
	// SIGINT/SIGTERM drain gracefully: stop accepting, cancel running
	// searches at their next generation boundary (each emits a final
	// checkpoint into the store), flush the WAL, then close the listener.
	// Draining the server first also unblocks every SSE handler (they
	// select on the server's base context), so Shutdown cannot deadlock
	// behind an open event stream.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Info("draining", "cause", "signal")
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(drainCtx); err != nil {
			logger.Error("drain failed", "err", err)
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown failed", "err", err)
		}
	}()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "digammad:", err)
		os.Exit(1)
	}
	<-done
	logger.Info("drained, exiting")
}
