package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"digamma"
	"digamma/internal/serve"
	"digamma/internal/workload"
)

// selftestOpts collects the load-generator knobs (see the -selftest flags
// in main.go). Zero values skip the corresponding optional phase.
type selftestOpts struct {
	Target                          string
	Total, Clients, Budget, Islands int
	Warm                            bool
	Tenants, Batch                  int
	Sustain                         time.Duration
	Rate                            float64
	P95Max                          time.Duration
	BenchLines                      bool
	DistSmoke                       bool
}

// selftestMix is the request mix the load generator cycles through: four
// distinct searches, so firing N ≥ 8 requests guarantees duplicates and a
// measurable dedup hit rate (ReqBench-style mixed concurrent workload).
var selftestMix = []serve.OptimizeRequest{
	{Model: "ncf", Platform: "edge", Objective: "latency"},
	{Model: "mnasnet", Platform: "edge", Objective: "edp"},
	{Model: "ncf", Platform: "cloud", Objective: "energy"},
	{Model: "mobilenetv2", Platform: "edge", Objective: "latency", Seed: 7},
}

// runSelftest fires total requests from clients concurrent workers at the
// target server (an in-process one when target is empty), waits for every
// job to reach a terminal state, and reports throughput plus dedup rate.
// islands > 1 runs the whole mix on the K-island engine — one variant
// additionally rotates the heterogeneous profiles — so serving loadgen
// rows cover island searches too. warm adds a near-duplicate phase after
// the mix: same-layer searches under fresh seeds (shared-analysis
// traffic), half of them warm-started, with the tier's hit rate reported.
// Tenants > 0 spreads the mix across that many tenants and (at >= 2) runs
// the two-tenant contention phase; Batch submits a near-duplicate sweep
// as one POST /v1/batches; Sustain runs the open-loop SLO phase.
func runSelftest(cfg serve.Config, opts selftestOpts) error {
	target := opts.Target
	total, clients, budget, islands := opts.Total, opts.Clients, opts.Budget, opts.Islands
	inProcess := target == ""
	if inProcess {
		s, err := serve.New(cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		target = ts.URL
		fmt.Printf("selftest: in-process server at %s\n", target)
	}
	if clients < 1 {
		clients = 1
	}

	type submitResp struct {
		ID           string `json:"id"`
		State        string `json:"state"`
		Deduplicated bool   `json:"deduplicated"`
	}

	var (
		wg        sync.WaitGroup
		next      atomic.Int64
		dedup     atomic.Int64
		errCount  atomic.Int64
		idMu      sync.Mutex
		ids       = map[string]struct{}{}
		firstErrs = make(chan error, clients)
	)
	next.Store(-1)
	begin := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= total {
					return
				}
				req := selftestMix[i%len(selftestMix)]
				req.Budget = budget
				if opts.Tenants > 0 {
					req.Tenant = fmt.Sprintf("t%d", i%opts.Tenants)
				}
				if islands > 1 {
					req.Islands = islands
					if i%len(selftestMix) == 1 {
						req.IslandProfiles = []string{"default", "explorer", "exploiter", "scout"}
					}
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(target+"/v1/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					errCount.Add(1)
					select {
					case firstErrs <- err:
					default:
					}
					continue
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					errCount.Add(1)
					select {
					case firstErrs <- fmt.Errorf("submit: %s: %s", resp.Status, data):
					default:
					}
					continue
				}
				var sr submitResp
				if err := json.Unmarshal(data, &sr); err != nil {
					errCount.Add(1)
					continue
				}
				if sr.Deduplicated {
					dedup.Add(1)
				}
				idMu.Lock()
				ids[sr.ID] = struct{}{}
				idMu.Unlock()
			}
		}()
	}
	wg.Wait()
	submitDur := time.Since(begin)

	// Wait for every distinct job to reach a terminal state.
	deadline := time.Now().Add(5 * time.Minute)
	done := 0
	for id := range ids {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s did not finish within the selftest deadline", id)
			}
			resp, err := http.Get(target + "/v1/jobs/" + id)
			if err != nil {
				return err
			}
			var st struct {
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if st.State == "done" || st.State == "degraded" || st.State == "failed" || st.State == "cancelled" {
				if st.State == "done" {
					done++
				}
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	totalDur := time.Since(begin)

	select {
	case err := <-firstErrs:
		fmt.Printf("selftest: first error: %v\n", err)
	default:
	}
	fmt.Printf("selftest: %d requests, %d clients, budget %d\n", total, clients, budget)
	fmt.Printf("  distinct jobs run:   %d (done %d, errors %d)\n", len(ids), done, errCount.Load())
	fmt.Printf("  dedup hits:          %d (%.0f%% of submissions)\n",
		dedup.Load(), 100*float64(dedup.Load())/float64(total))
	fmt.Printf("  submit throughput:   %.1f req/s (%.3fs)\n",
		float64(total)/submitDur.Seconds(), submitDur.Seconds())
	fmt.Printf("  end-to-end:          %.1f req/s (%.3fs for all jobs to finish)\n",
		float64(total)/totalDur.Seconds(), totalDur.Seconds())
	if errCount.Load() > 0 {
		return fmt.Errorf("%d requests failed", errCount.Load())
	}
	// Only a server this run created starts empty; a warm -target one may
	// dedup every submission against pre-existing jobs, which would make
	// this invariant read as a failure when the server is behaving.
	if inProcess && len(ids)+int(dedup.Load()) != total {
		return fmt.Errorf("accounting mismatch: %d distinct + %d dedup != %d total", len(ids), dedup.Load(), total)
	}
	if opts.Warm {
		if err := runWarmPhase(target, budget); err != nil {
			return err
		}
	}
	if opts.Batch > 1 {
		if err := runBatchPhase(target, opts.Batch, budget); err != nil {
			return err
		}
	}
	if opts.Tenants >= 2 {
		if err := runContentionPhase(target, budget); err != nil {
			return err
		}
	}
	if opts.Sustain > 0 {
		if err := runSustainedPhase(target, opts); err != nil {
			return err
		}
	}
	if opts.DistSmoke {
		if err := runDistPhase(budget); err != nil {
			return err
		}
	}
	return verifyObservability(target, ids)
}

// submitJob POSTs one optimize request and returns the accepted job's id
// and whether it deduplicated onto an existing one.
func submitJob(target string, req serve.OptimizeRequest) (id string, dedup bool, err error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(target+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("submit: %s: %s", resp.Status, data)
	}
	var sr struct {
		ID           string `json:"id"`
		Deduplicated bool   `json:"deduplicated"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		return "", false, err
	}
	return sr.ID, sr.Deduplicated, nil
}

// waitTerminal long-polls GET /v1/jobs/{id}?wait= until the job settles,
// returning its terminal state.
func waitTerminal(target, id string, deadline time.Time) (string, error) {
	for {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s did not finish in time", id)
		}
		resp, err := http.Get(target + "/v1/jobs/" + id + "?wait=30s")
		if err != nil {
			return "", err
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch st.State {
		case "done", "degraded", "failed", "cancelled":
			return st.State, nil
		}
	}
}

// pct reads the q-quantile (0..1) off a sorted latency slice.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// latencyTable prints one "tenant n p50 p95 p99" row per key, sorted.
func latencyTable(lat map[string][]time.Duration) {
	tenants := make([]string, 0, len(lat))
	for t := range lat {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Printf("  %-10s %6s %10s %10s %10s\n", "tenant", "n", "p50", "p95", "p99")
	for _, t := range tenants {
		d := lat[t]
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		fmt.Printf("  %-10s %6d %10s %10s %10s\n", t, len(d),
			pct(d, 0.50).Round(time.Millisecond),
			pct(d, 0.95).Round(time.Millisecond),
			pct(d, 0.99).Round(time.Millisecond))
	}
}

// runBatchPhase submits one n-item near-duplicate sweep as a single POST
// /v1/batches — shared defaults, per-item width perturbations, and a
// deliberate duplicate of the base item at the tail so the in-batch dedup
// path is exercised — then long-polls the batch endpoint to completion.
func runBatchPhase(target string, n, budget int) error {
	base := func() []workload.LayerSpec {
		return []workload.LayerSpec{
			{Name: "bfc0", Type: "gemm", K: 128, C: 256, Y: 1, X: 1, R: 1, S: 1},
			{Name: "bfc1", Type: "gemm", K: 64, C: 128, Y: 1, X: 1, R: 1, S: 1},
		}
	}
	breq := serve.BatchRequest{
		Defaults: serve.OptimizeRequest{
			Layers: base(), Platform: "edge", Objective: "latency",
			Budget: budget, Seed: 4242,
		},
		Items: make([]serve.OptimizeRequest, n),
	}
	// Item 0 and item n-1 are pure defaults (the duplicate pair); the rest
	// perturb one layer's width — the sweep signature.
	for i := 1; i < n-1; i++ {
		layers := base()
		layers[i%len(layers)].C += 4 * i
		breq.Items[i] = serve.OptimizeRequest{Layers: layers}
	}
	body, _ := json.Marshal(breq)
	begin := time.Now()
	resp, err := http.Post(target+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("batch phase: %w", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("batch phase: %s: %s", resp.Status, data)
	}
	var bst struct {
		ID           string `json:"id"`
		State        string `json:"state"`
		Total        int    `json:"total"`
		Completed    int    `json:"completed"`
		Deduplicated int    `json:"deduplicated"`
	}
	if err := json.Unmarshal(data, &bst); err != nil {
		return fmt.Errorf("batch phase: %w", err)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for bst.State == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("batch phase: batch %s did not finish in time", bst.ID)
		}
		resp, err := http.Get(target + "/v1/batches/" + bst.ID + "?wait=30s")
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&bst)
		resp.Body.Close()
		if err != nil {
			return err
		}
	}
	dur := time.Since(begin)
	fmt.Printf("  batch sweep:         %d items as one submit: %d completed, %d dedup, %.3fs (%.1f items/s)\n",
		bst.Total, bst.Completed, bst.Deduplicated, dur.Seconds(), float64(bst.Total)/dur.Seconds())
	if bst.State != "done" {
		return fmt.Errorf("batch phase: batch %s finished %s", bst.ID, bst.State)
	}
	if bst.Deduplicated < 1 {
		return fmt.Errorf("batch phase: duplicate tail item was not deduplicated")
	}
	return nil
}

// runContentionPhase is the fairness leg: two tenants ("gold" and
// "silver" — 3:1 weighted on the in-process server) submit interleaved
// unique searches that saturate the worker pool, each request's
// end-to-end latency is recorded, and afterwards the per-tenant
// dispatched-eval counters and the scheduler's starvation guard are read
// off /metrics. A healthy scheduler shows zero forced dispatches.
func runContentionPhase(target string, budget int) error {
	evals0 := map[string]float64{}
	for _, tenant := range []string{"gold", "silver"} {
		v, _ := scrapeCounter(target, fmt.Sprintf("digammad_tenant_evals_total{tenant=%q}", tenant))
		evals0[tenant] = v
	}
	starved0, err := scrapeCounter(target, "digammad_sched_starvation_total")
	if err != nil {
		return fmt.Errorf("contention phase: %w", err)
	}

	const perTenant = 6
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		lat = map[string][]time.Duration{}
	)
	deadline := time.Now().Add(5 * time.Minute)
	var firstErr atomic.Value
	for i := 0; i < 2*perTenant; i++ {
		tenant := "gold"
		if i%2 == 1 {
			tenant = "silver"
		}
		req := serve.OptimizeRequest{
			Model: "ncf", Platform: "edge", Objective: "latency",
			Budget: budget, Seed: int64(5000 + i), Tenant: tenant,
		}
		wg.Add(1)
		go func(tenant string, req serve.OptimizeRequest) {
			defer wg.Done()
			begin := time.Now()
			id, _, err := submitJob(target, req)
			if err == nil {
				_, err = waitTerminal(target, id, deadline)
			}
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			mu.Lock()
			lat[tenant] = append(lat[tenant], time.Since(begin))
			mu.Unlock()
		}(tenant, req)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return fmt.Errorf("contention phase: %w", err)
	}

	fmt.Printf("  contention phase:    %d jobs across gold and silver\n", 2*perTenant)
	latencyTable(lat)
	goldEvals, _ := scrapeCounter(target, `digammad_tenant_evals_total{tenant="gold"}`)
	silverEvals, _ := scrapeCounter(target, `digammad_tenant_evals_total{tenant="silver"}`)
	gold, silver := goldEvals-evals0["gold"], silverEvals-evals0["silver"]
	if gold+silver > 0 {
		fmt.Printf("  eval shares:         gold %.0f%% / silver %.0f%%\n",
			100*gold/(gold+silver), 100*silver/(gold+silver))
	}
	starved, err := scrapeCounter(target, "digammad_sched_starvation_total")
	if err != nil {
		return fmt.Errorf("contention phase: %w", err)
	}
	if starved != starved0 {
		return fmt.Errorf("contention phase: starvation guard fired %.0f times", starved-starved0)
	}
	fmt.Printf("  starvation guard:    0 forced dispatches\n")
	return nil
}

// runSustainedPhase is the SLO leg: an open-loop generator submits unique
// searches at opts.Rate for opts.Sustain (spread across opts.Tenants
// tenants when set), long-polling each to completion. It reports
// completed throughput and p50/p95/p99 end-to-end latency — per tenant
// when multi-tenant — and fails when p95 exceeds opts.P95Max or the
// starvation guard fired.
func runSustainedPhase(target string, opts selftestOpts) error {
	starved0, err := scrapeCounter(target, "digammad_sched_starvation_total")
	if err != nil {
		return fmt.Errorf("sustained phase: %w", err)
	}
	rate := opts.Rate
	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lat      = map[string][]time.Duration{}
		errCount atomic.Int64
		firstErr atomic.Value
	)
	begin := time.Now()
	end := begin.Add(opts.Sustain)
	deadline := end.Add(5 * time.Minute)
	submitted := 0
	for time.Now().Before(end) {
		tenant := ""
		if opts.Tenants > 0 {
			tenant = fmt.Sprintf("t%d", submitted%opts.Tenants)
		}
		req := serve.OptimizeRequest{
			Model: "ncf", Platform: "edge", Objective: "latency",
			Budget: opts.Budget, Seed: int64(9000 + submitted), Tenant: tenant,
		}
		key := tenant
		if key == "" {
			key = "default"
		}
		submitted++
		wg.Add(1)
		go func(key string, req serve.OptimizeRequest) {
			defer wg.Done()
			t0 := time.Now()
			id, _, err := submitJob(target, req)
			if err == nil {
				_, err = waitTerminal(target, id, deadline)
			}
			if err != nil {
				errCount.Add(1)
				firstErr.CompareAndSwap(nil, err)
				return
			}
			mu.Lock()
			lat[key] = append(lat[key], time.Since(t0))
			mu.Unlock()
		}(key, req)
		time.Sleep(interval)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	var all []time.Duration
	for _, d := range lat {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50, p95, p99 := pct(all, 0.50), pct(all, 0.95), pct(all, 0.99)
	fmt.Printf("  sustained phase:     %d submits over %.1fs at %.1f req/s target\n",
		submitted, elapsed.Seconds(), rate)
	fmt.Printf("  throughput:          %.1f completed/s (%d completed, %d errors)\n",
		float64(len(all))/elapsed.Seconds(), len(all), errCount.Load())
	fmt.Printf("  latency:             p50 %s  p95 %s  p99 %s\n",
		p50.Round(time.Millisecond), p95.Round(time.Millisecond), p99.Round(time.Millisecond))
	if opts.BenchLines && len(all) > 0 {
		// Go-benchmark-format row so scripts/bench.sh can fold served tail
		// latency into BENCH_core.json next to the throughput rows: ns/op
		// is the mean end-to-end latency, p95/p99 ride as custom units.
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		fmt.Printf("BenchmarkSelftestSustain/rate%g \t%8d\t%12d ns/op\t%12d p95_ns/op\t%12d p99_ns/op\n",
			rate, len(all), int64(sum)/int64(len(all)), p95.Nanoseconds(), p99.Nanoseconds())
	}
	if opts.Tenants > 0 {
		latencyTable(lat)
	}
	if n := errCount.Load(); n > 0 {
		err, _ := firstErr.Load().(error)
		return fmt.Errorf("sustained phase: %d requests failed (first: %v)", n, err)
	}
	starved, err := scrapeCounter(target, "digammad_sched_starvation_total")
	if err != nil {
		return fmt.Errorf("sustained phase: %w", err)
	}
	if starved != starved0 {
		return fmt.Errorf("sustained phase: starvation guard fired %.0f times", starved-starved0)
	}
	if opts.P95Max > 0 && p95 > opts.P95Max {
		return fmt.Errorf("sustained phase: p95 %s exceeds the %s SLO", p95, opts.P95Max)
	}
	return nil
}

// runWarmPhase is the near-duplicate leg: a base four-layer GEMM tower
// followed by requests that each perturb exactly one layer's width (the
// ReqBench near-duplicate discipline — the shape of customer-variant
// traffic), under seeds no earlier request used, so none of them dedups
// and every hit they score comes from the shared analysis tier. All but
// the first opt into warm_start, seeding from the nearest prior result.
// Completion rides one GET /v1/jobs/{id}?wait= long-poll per job instead
// of a status poll loop. Afterwards the tier's counters are scraped off
// /metrics and the hit rate reported.
func runWarmPhase(target string, budget int) error {
	const n = 8
	// Snapshot the tier before the phase: the counters are process-wide,
	// and the mix's cold searches would otherwise drown the
	// near-duplicate stream's hit rate in their misses.
	hits0, err := scrapeCounter(target, "digammad_analysis_hits_total")
	if err != nil {
		return err
	}
	misses0, err := scrapeCounter(target, "digammad_analysis_misses_total")
	if err != nil {
		return err
	}
	baseLayers := func() []workload.LayerSpec {
		return []workload.LayerSpec{
			{Name: "fc0", Type: "gemm", K: 256, C: 512, Y: 1, X: 1, R: 1, S: 1},
			{Name: "fc1", Type: "gemm", K: 128, C: 256, Y: 1, X: 1, R: 1, S: 1},
			{Name: "fc2", Type: "gemm", K: 64, C: 128, Y: 1, X: 1, R: 1, S: 1},
			{Name: "fc3", Type: "gemm", K: 32, C: 64, Y: 1, X: 1, R: 1, S: 1},
		}
	}
	macs := func(layers []workload.LayerSpec) float64 {
		total := 0.0
		for _, l := range layers {
			total += float64(l.K) * float64(l.C)
		}
		return total
	}
	baseMacs := macs(baseLayers())
	var refFitness float64
	for i := 0; i < n; i++ {
		layers := baseLayers()
		if i > 0 {
			// Perturb one layer per request: bounded width bump on a
			// rotating layer, the near-duplicate signature.
			layers[i%len(layers)].C += 8 * i
		}
		req := serve.OptimizeRequest{
			Layers: layers, Platform: "edge", Objective: "latency",
			Budget: budget, Seed: int64(1000 + i), WarmStart: i > 0,
		}
		if i > 0 && refFitness > 0 {
			// Time-to-target: ask for a design within 5% of the base
			// request's quality, scaled by the perturbed workload's
			// compute — the full near-duplicate serving path, where a
			// warm-started search stops at its first generation boundary.
			req.Target = refFitness * 1.05 * macs(layers) / baseMacs
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(target+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("warm phase submit: %w", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("warm phase submit: %s: %s", resp.Status, data)
		}
		var sr struct {
			ID     string `json:"id"`
			State  string `json:"state"`
			Result *struct {
				Metrics struct {
					Fitness float64 `json:"fitness"`
				} `json:"metrics"`
			} `json:"result"`
		}
		if err := json.Unmarshal(data, &sr); err != nil {
			return fmt.Errorf("warm phase submit: %w", err)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for sr.State != "done" {
			if sr.State == "degraded" || sr.State == "failed" || sr.State == "cancelled" {
				return fmt.Errorf("warm phase job %s finished %s", sr.ID, sr.State)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("warm phase job %s did not finish in time", sr.ID)
			}
			resp, err := http.Get(target + "/v1/jobs/" + sr.ID + "?wait=30s")
			if err != nil {
				return err
			}
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				return err
			}
		}
		if i == 0 && sr.Result != nil {
			refFitness = sr.Result.Metrics.Fitness
		}
	}
	hits, err := scrapeCounter(target, "digammad_analysis_hits_total")
	if err != nil {
		return err
	}
	misses, err := scrapeCounter(target, "digammad_analysis_misses_total")
	if err != nil {
		return err
	}
	hits, misses = hits-hits0, misses-misses0
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * hits / (hits + misses)
	}
	fmt.Printf("  analysis tier:       %d near-duplicate requests, %.0f hits / %.0f misses (%.0f%% hit rate)\n",
		n, hits, misses, rate)
	return nil
}

// scrapeCounter reads one scalar series off the target's /metrics.
func scrapeCounter(target, name string) (float64, error) {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		return 0, fmt.Errorf("scraping %s: %w", name, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range bytes.Split(data, []byte("\n")) {
		var v float64
		if _, err := fmt.Sscanf(string(line), name+" %g", &v); err == nil {
			return v, nil
		}
	}
	return 0, fmt.Errorf("/metrics has no %s series (shared analysis disabled on target?)", name)
}

// verifyObservability is the loadgen's telemetry smoke: after the mix
// completes it scrapes /metrics and pulls one job's /trace and /report,
// checking each parses into the documented shape. Tracing disabled
// (-trace-spans < 0) legitimately 404s the per-job endpoints; that is
// reported, not failed.
func verifyObservability(target string, ids map[string]struct{}) error {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		return fmt.Errorf("observability: metrics scrape: %w", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("# TYPE digammad_build_info gauge")) {
		return fmt.Errorf("observability: /metrics missing digammad_build_info")
	}
	if !bytes.Contains(metrics, []byte("# TYPE digammad_search_latency_seconds histogram")) {
		return fmt.Errorf("observability: /metrics missing the search-latency histogram")
	}

	var id string
	for id = range ids {
		break
	}
	if id == "" {
		return nil
	}
	resp, err = http.Get(target + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return fmt.Errorf("observability: trace fetch: %w", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fmt.Printf("  observability:       tracing disabled on target, skipping /trace and /report\n")
		return nil
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil || len(trace.TraceEvents) == 0 {
		return fmt.Errorf("observability: job %s trace invalid (%d events, err %v)", id, len(trace.TraceEvents), err)
	}

	resp, err = http.Get(target + "/v1/jobs/" + id + "/report")
	if err != nil {
		return fmt.Errorf("observability: report fetch: %w", err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var rep struct {
		Search struct {
			SearchSeconds float64           `json:"search_seconds"`
			Phases        []json.RawMessage `json:"phases"`
		} `json:"search"`
	}
	if err := json.Unmarshal(data, &rep); err != nil || len(rep.Search.Phases) == 0 {
		return fmt.Errorf("observability: job %s report invalid (%d phases, err %v): %s", id, len(rep.Search.Phases), err, data)
	}
	fmt.Printf("  observability:       %d trace events, %d report phases, %.3fs search span (job %s)\n",
		len(trace.TraceEvents), len(rep.Search.Phases), rep.Search.SearchSeconds, id)
	return nil
}

// runDistPhase is the multi-process smoke: spawn two -worker copies of
// this very binary, run one island search in-process and once sharded
// across them — SIGKILLing a worker as soon as the distributed run is
// demonstrably under way — and require the re-homed result to match the
// local one bit for bit. This exercises the whole distributed stack
// (re-exec, handshake, sharded stepping, elite exchange, worker-loss
// re-homing, final collection) with nothing mocked.
func runDistPhase(budget int) error {
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("dist phase: %w", err)
	}
	dir, err := os.MkdirTemp("", "digammad-dist")
	if err != nil {
		return fmt.Errorf("dist phase: %w", err)
	}
	defer os.RemoveAll(dir)

	spawn := func(i int) (*exec.Cmd, string, error) {
		af := filepath.Join(dir, fmt.Sprintf("worker%d.addr", i))
		cmd := exec.Command(self, "-worker", "-addr", "127.0.0.1:0", "-addr-file", af)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, "", err
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			b, err := os.ReadFile(af)
			if err == nil && len(b) > 0 {
				return cmd, strings.TrimSpace(string(b)), nil
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				return nil, "", fmt.Errorf("worker %d never published its address", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	victim, a0, err := spawn(0)
	if err != nil {
		return fmt.Errorf("dist phase: %w", err)
	}
	defer func() { victim.Process.Kill(); victim.Wait() }()
	survivor, a1, err := spawn(1)
	if err != nil {
		return fmt.Errorf("dist phase: %w", err)
	}
	defer func() { survivor.Process.Kill(); survivor.Wait() }()

	model, err := digamma.LoadModel("ncf")
	if err != nil {
		return fmt.Errorf("dist phase: %w", err)
	}
	if budget < 480 {
		budget = 480
	}
	opts := digamma.Options{
		Budget: budget, Seed: 7, Workers: 1,
		Islands: 4, MigrateEvery: 2,
		IslandProfiles: []string{"default", "explorer", "exploiter", "scout"},
	}
	ref, err := digamma.Optimize(model, digamma.EdgePlatform(), opts)
	if err != nil {
		return fmt.Errorf("dist phase: local run: %w", err)
	}
	opts.DistWorkers = []string{a0, a1}
	var once sync.Once
	opts.OnProgress = func(p digamma.Progress) {
		if p.Generation >= 2 {
			once.Do(func() { victim.Process.Kill() })
		}
	}
	got, err := digamma.Optimize(model, digamma.EdgePlatform(), opts)
	if err != nil {
		return fmt.Errorf("dist phase: distributed run: %w", err)
	}
	if got.Fitness != ref.Fitness {
		return fmt.Errorf("dist phase: distributed best %v != local %v after worker kill", got.Fitness, ref.Fitness)
	}
	fmt.Printf("  dist smoke:          2 workers spawned, 1 killed mid-run, result bit-identical (fitness %.6g)\n", got.Fitness)
	return nil
}
