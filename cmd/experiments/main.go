// Command experiments regenerates the paper's evaluation figures:
//
//	experiments fig5           # algorithm comparison (both platforms)
//	experiments fig6           # scheme comparison (both platforms)
//	experiments fig7           # MnasNet solution walk-through
//	experiments all            # everything, in paper order
//	experiments sweep -server http://localhost:8080
//	                           # model×seed grid served by a running
//	                           # digammad, one batch per platform
//
// Flags scale the run: -budget matches the paper's 40K-sample protocol
// when you have the minutes to spare; the default regenerates the same
// table shapes in well under a minute.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"digamma"
	"digamma/internal/arch"
	"digamma/internal/figures"
)

func main() {
	var (
		budget   = flag.Int("budget", 2000, "sampling budget per algorithm run (paper: 40000)")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "parallel experiment cells / evaluation workers (0 = all cores, 1 = serial; tables identical)")
		fidelity = flag.String("fidelity", "analytical", "cost-model tier: bound, analytical, physical")
		prune    = flag.Bool("prune", false, "screen candidates with the roofline lower bound (DiGamma and Gamma cells; vector baselines ignore it)")
		islands  = flag.Int("islands", 0, "island-model DiGamma/Gamma cells: K semi-isolated populations with ring elite migration (<=1 = single population)")
		migrate  = flag.Int("migrate-every", 0, "island elite-migration period in generations (0 = engine default)")
		profs    = flag.String("island-profile", "", "comma-separated per-island operator profiles, rotated across islands: "+strings.Join(digamma.IslandProfiles(), ", "))
		models   = flag.String("models", "", "comma-separated model subset (default: all 7)")
		server   = flag.String("server", "", "sweep: base URL of a running digammad; the model×seed grid goes up as one batch per platform")
		seeds    = flag.Int("seeds", 3, "sweep: seeds per model cell")
		platform = flag.String("platform", "", "restrict to edge or cloud (default: both)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		verbose  = flag.Bool("v", false, "log every individual run")
	)
	// Allow the subcommand anywhere relative to the flags ("experiments
	// fig5 -budget 100" and "experiments -budget 100 fig5" both work);
	// flag.Parse alone stops at the first non-flag token.
	which := "all"
	var rest []string
	for _, a := range os.Args[1:] {
		switch a {
		case "fig5", "fig6", "fig7", "ablation", "convergence", "multiseed", "islands", "sweep", "all":
			which = a
		default:
			rest = append(rest, a)
		}
	}
	if err := flag.CommandLine.Parse(rest); err != nil {
		os.Exit(2)
	}

	opts := figures.Options{Budget: *budget, Seed: *seed, Workers: *workers, Fidelity: *fidelity, Prune: *prune,
		Islands: *islands, MigrateEvery: *migrate}
	if *profs != "" {
		for _, p := range strings.Split(*profs, ",") {
			opts.IslandProfiles = append(opts.IslandProfiles, strings.TrimSpace(p))
		}
	}
	if *models != "" {
		opts.Models = strings.Split(*models, ",")
	}
	if *verbose {
		opts.Log = os.Stderr
	}

	var platforms []arch.Platform
	switch *platform {
	case "":
		platforms = []arch.Platform{arch.Edge(), arch.Cloud()}
	case "edge":
		platforms = []arch.Platform{arch.Edge()}
	case "cloud":
		platforms = []arch.Platform{arch.Cloud()}
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown platform %q\n", *platform)
		os.Exit(1)
	}

	if which == "sweep" {
		if err := runSweep(os.Stdout, *server, platforms, opts, *seeds, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, which, platforms, opts, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, which string, platforms []arch.Platform, opts figures.Options, csv bool) error {
	emit := func(render, csvText string) {
		if csv {
			fmt.Fprintln(w, csvText)
		} else {
			fmt.Fprintln(w, render)
		}
	}
	switch which {
	case "fig5":
		for _, p := range platforms {
			lat, lap, err := figures.Fig5(p, opts)
			if err != nil {
				return err
			}
			emit(lat.Render(), lat.CSV())
			emit(lap.Render(), lap.CSV())
		}
	case "fig6":
		for _, p := range platforms {
			tb, err := figures.Fig6(p, opts)
			if err != nil {
				return err
			}
			emit(tb.Render(), tb.CSV())
		}
	case "fig7":
		sols, tb, err := figures.Fig7(opts)
		if err != nil {
			return err
		}
		if csv {
			fmt.Fprintln(w, tb.CSV())
		} else {
			fmt.Fprintln(w, figures.RenderFig7(sols, tb))
		}
	case "ablation":
		for _, p := range platforms {
			tb, err := figures.Ablation(p, opts)
			if err != nil {
				return err
			}
			emit(tb.Render(), tb.CSV())
		}
	case "convergence":
		for _, p := range platforms {
			for _, m := range opts.Models {
				tb, err := figures.Convergence(p, m, 10, opts)
				if err != nil {
					return err
				}
				emit(tb.Render(), tb.CSV())
			}
		}
	case "multiseed":
		for _, p := range platforms {
			for _, m := range opts.Models {
				tb, err := figures.MultiSeed(p, m, 5, opts)
				if err != nil {
					return err
				}
				emit(tb.Render(), tb.CSV())
			}
		}
	case "islands":
		for _, p := range platforms {
			tb, err := figures.IslandSweep(p, opts)
			if err != nil {
				return err
			}
			emit(tb.Render(), tb.CSV())
		}
	case "all":
		for _, sub := range []string{"fig5", "fig6", "fig7", "ablation"} {
			if err := run(w, sub, platforms, opts, csv); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q (want fig5, fig6, fig7, ablation, convergence, multiseed, islands, sweep or all)", which)
	}
	return nil
}
