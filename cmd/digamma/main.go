// Command digamma runs one HW-Mapping co-optimization: pick a model, a
// platform, an algorithm and a sampling budget, get back the best
// accelerator design point with its full performance report.
//
// Examples:
//
//	digamma -model resnet18 -platform edge -budget 4000
//	digamma -model bert -platform cloud -alg CMA -objective latency-area
//	digamma -model mnasnet -fixed-pes 16x8 -fixed-l1 4096 -fixed-l2 524288
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"digamma"
	"digamma/internal/coopt"
)

func main() {
	var (
		modelName = flag.String("model", "resnet18", "model: "+strings.Join(digamma.ModelNames, ", "))
		platName  = flag.String("platform", "edge", "platform: edge or cloud")
		algorithm = flag.String("alg", "DiGamma", "algorithm: "+strings.Join(digamma.Algorithms(), ", "))
		objective = flag.String("objective", "latency", "objective: latency, energy, edp, latency-area")
		budget    = flag.Int("budget", 4000, "sampling budget (design points evaluated)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel evaluation workers (0 = all cores, 1 = serial; results identical)")
		fidelity  = flag.String("fidelity", "analytical", "cost-model tier: "+strings.Join(digamma.Fidelities(), ", "))
		prune     = flag.Bool("prune", false, "screen candidates with the roofline lower bound (genetic engines incl. fixed-HW GAMMA; vector baselines ignore it)")
		islands   = flag.Int("islands", 0, "split the genetic search into K semi-isolated populations with ring elite migration (<=1 = classic single population; results never depend on -workers)")
		migrate   = flag.Int("migrate-every", 0, "island elite-migration period in generations (0 = engine default)")
		profiles  = flag.String("island-profile", "", "comma-separated per-island operator profiles, rotated across islands: "+strings.Join(digamma.IslandProfiles(), ", "))
		fixedPEs  = flag.String("fixed-pes", "", "fixed-HW mode: PE hierarchy, e.g. 16x8 (inner x outer)")
		fixedL1   = flag.Int64("fixed-l1", 0, "fixed-HW mode: per-PE L1 bytes")
		fixedL2   = flag.Int64("fixed-l2", 0, "fixed-HW mode: shared L2 bytes")
		perLayer  = flag.Bool("layers", false, "print the per-layer breakdown")
		modelCSV  = flag.String("model-csv", "", "path to a custom model in CSV layer format (overrides -model)")
		jsonOut   = flag.String("json", "", "write the full design-point report as JSON to this path ('-' = stdout)")
	)
	flag.Parse()

	if err := run(*modelName, *platName, *algorithm, *objective, *budget, *seed, *workers,
		*fidelity, *prune, *islands, *migrate, splitProfiles(*profiles),
		*fixedPEs, *fixedL1, *fixedL2, *perLayer, *modelCSV, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "digamma:", err)
		os.Exit(1)
	}
}

// splitProfiles turns the -island-profile flag into a profile rotation;
// empty means the default profile on every island.
func splitProfiles(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func run(modelName, platName, algorithm, objective string, budget int, seed int64, workers int,
	fidelity string, prune bool, islands, migrateEvery int, profiles []string,
	fixedPEs string, fixedL1, fixedL2 int64, perLayer bool, modelCSV, jsonOut string) error {

	var model digamma.Model
	var err error
	if modelCSV != "" {
		model, err = digamma.LoadModelCSVFile(modelCSV)
	} else {
		model, err = digamma.LoadModel(modelName)
	}
	if err != nil {
		return err
	}
	var platform digamma.Platform
	switch platName {
	case "edge":
		platform = digamma.EdgePlatform()
	case "cloud":
		platform = digamma.CloudPlatform()
	default:
		return fmt.Errorf("unknown platform %q", platName)
	}
	obj, err := coopt.ParseObjective(objective)
	if err != nil {
		return err
	}
	opts := digamma.Options{Budget: budget, Seed: seed, Objective: obj, Algorithm: algorithm,
		Workers: workers, Fidelity: fidelity, Prune: prune,
		Islands: islands, MigrateEvery: migrateEvery, IslandProfiles: profiles}

	var best *digamma.Evaluation
	if fixedPEs != "" {
		hw, err := parseHW(fixedPEs, fixedL1, fixedL2)
		if err != nil {
			return err
		}
		best, err = digamma.OptimizeMapping(model, platform, hw, opts)
		if err != nil {
			return err
		}
	} else {
		best, err = digamma.Optimize(model, platform, opts)
		if err != nil {
			return err
		}
	}

	fmt.Printf("model:      %s (%d layers, %.2f GMACs)\n",
		model.Name, len(model.Layers), float64(model.MACs())/1e9)
	fmt.Printf("platform:   %s (budget %.2f mm²)\n", platform.Name, platform.AreaBudgetMM2)
	fmt.Printf("algorithm:  %s, budget %d samples, seed %d\n", algorithm, budget, seed)
	fmt.Printf("valid:      %v\n", best.Valid)
	fmt.Printf("hardware:   %s\n", best.HW)
	fmt.Printf("area:       %s\n", best.Area)
	fmt.Printf("latency:    %.4e cycles\n", best.Cycles)
	fmt.Printf("energy:     %.4e pJ\n", best.EnergyPJ)
	fmt.Printf("lat×area:   %.4e cycle·mm²\n", best.LatAreaProd)
	if perLayer {
		fmt.Println("\nper-layer breakdown (unique layers):")
		for li, le := range best.Layers {
			fmt.Printf("  %-18s x%-3d  %.3e cycles  util %.2f  %s\n",
				le.Layer.Name, le.Layer.Multiplicity(), le.Result.Cycles,
				le.Result.Utilization, best.Genome.Maps[li])
		}
	}
	if jsonOut != "" {
		w := os.Stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := digamma.WriteReport(w, best); err != nil {
			return err
		}
	}
	return nil
}

// parseHW builds a fixed hardware configuration from CLI flags.
func parseHW(pes string, l1, l2 int64) (digamma.HW, error) {
	parts := strings.Split(pes, "x")
	fanouts := make([]int, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || f < 1 {
			return digamma.HW{}, fmt.Errorf("bad -fixed-pes %q", pes)
		}
		fanouts = append(fanouts, f)
	}
	if len(fanouts) < 2 {
		return digamma.HW{}, fmt.Errorf("-fixed-pes needs at least two levels, e.g. 16x8")
	}
	if l1 <= 0 || l2 <= 0 {
		return digamma.HW{}, fmt.Errorf("fixed-HW mode needs -fixed-l1 and -fixed-l2 bytes")
	}
	buf := make([]int64, len(fanouts))
	buf[0] = l1
	for i := 1; i < len(buf); i++ {
		buf[i] = l2
	}
	return digamma.HW{Fanouts: fanouts, BufBytes: buf}, nil
}
