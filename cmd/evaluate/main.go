// Command evaluate is the one-shot performance evaluator (the MAESTRO
// role): give it a hardware configuration, a layer (or model) and a
// mapping style, and it prints the detailed analysis — latency,
// utilization, per-level buffer demand and traffic — without any search.
//
// Examples:
//
//	evaluate -model resnet18 -pes 16x8 -l1 2048 -l2 131072 -style dla-like
//	evaluate -layer CONV,64,32,28,28,3,3 -pes 16x8 -l1 2048 -l2 131072 -style eye-like
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"digamma/internal/arch"
	"digamma/internal/coopt"
	"digamma/internal/cost"
	"digamma/internal/schemes"
	"digamma/internal/workload"
)

func main() {
	var (
		modelName = flag.String("model", "", "built-in model name (evaluates every unique layer)")
		layerSpec = flag.String("layer", "", "single layer: TYPE,K,C,Y,X,R,S[,strideY,strideX]")
		pes       = flag.String("pes", "16x8", "PE hierarchy, inner x outer")
		l1        = flag.Int64("l1", 2048, "per-PE L1 bytes")
		l2        = flag.Int64("l2", 131072, "shared L2 bytes")
		styleName = flag.String("style", "dla-like", "mapping style: dla-like, shi-like, eye-like")
		platName  = flag.String("platform", "edge", "platform for area/energy models")
		workers   = flag.Int("workers", 0, "parallel per-layer analyses (0 = all cores, 1 = serial; results identical)")
		fidelity  = flag.String("fidelity", "analytical", "cost-model tier: "+strings.Join(cost.BackendNames, ", "))
	)
	flag.Parse()

	if err := run(*modelName, *layerSpec, *pes, *l1, *l2, *styleName, *platName, *workers, *fidelity); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run(modelName, layerSpec, pes string, l1, l2 int64, styleName, platName string, workers int, fidelity string) error {
	platform, err := arch.PlatformByName(platName)
	if err != nil {
		return err
	}
	backend, err := cost.BackendByName(fidelity)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var layers []workload.Layer
	switch {
	case layerSpec != "":
		l, err := parseLayer(layerSpec)
		if err != nil {
			return err
		}
		layers = []workload.Layer{l}
	case modelName != "":
		m, err := workload.ByName(modelName)
		if err != nil {
			return err
		}
		layers = m.UniqueLayers()
	default:
		return fmt.Errorf("need -model or -layer")
	}

	var style schemes.MapStyle
	switch styleName {
	case "dla-like":
		style = schemes.DLALike
	case "shi-like":
		style = schemes.ShiLike
	case "eye-like":
		style = schemes.EyeLike
	default:
		return fmt.Errorf("unknown style %q", styleName)
	}

	hw, err := parseHW(pes, l1, l2)
	if err != nil {
		return err
	}

	maps := schemes.StyleMappings(style, hw, layers)
	ev, err := coopt.EvaluateMappingBackend(layers, hw, maps, platform, coopt.Latency, workers, backend)
	if err != nil {
		return err
	}

	fmt.Printf("hardware: %s (%s style)\n", hw, style)
	fmt.Printf("area:     %s\n", ev.Area)
	fmt.Printf("total:    %.4e cycles, %.4e pJ, valid=%v\n\n", ev.Cycles, ev.EnergyPJ, ev.Valid)
	for li, le := range ev.Layers {
		fmt.Printf("--- %s (x%d) ---\n", le.Layer, le.Layer.Multiplicity())
		fmt.Printf("mapping: %s\n", maps[li])
		fmt.Print(le.Result.Detail(platform.Energy, le.Layer.MACs()))
		fmt.Println()
	}
	return nil
}

// parseLayer builds a layer from "TYPE,K,C,Y,X,R,S[,sy,sx]".
func parseLayer(spec string) (workload.Layer, error) {
	parts := strings.Split(spec, ",")
	if len(parts) < 7 {
		return workload.Layer{}, fmt.Errorf("layer spec needs TYPE,K,C,Y,X,R,S")
	}
	var l workload.Layer
	l.Name = "cli-layer"
	switch strings.ToUpper(parts[0]) {
	case "CONV":
		l.Type = workload.Conv
	case "DSCONV":
		l.Type = workload.DepthwiseConv
	case "GEMM":
		l.Type = workload.GEMM
	default:
		return l, fmt.Errorf("unknown layer type %q", parts[0])
	}
	vals := make([]int, 0, 8)
	for _, p := range parts[1:] {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return l, err
		}
		vals = append(vals, v)
	}
	l.K, l.C, l.Y, l.X, l.R, l.S = vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
	if len(vals) > 6 {
		l.StrideY = vals[6]
	}
	if len(vals) > 7 {
		l.StrideX = vals[7]
	}
	return l, l.Validate()
}

// parseHW builds the fixed hardware configuration.
func parseHW(pes string, l1, l2 int64) (arch.HW, error) {
	parts := strings.Split(pes, "x")
	if len(parts) != 2 {
		return arch.HW{}, fmt.Errorf("-pes must be innerxouter, e.g. 16x8")
	}
	f0, err := strconv.Atoi(parts[0])
	if err != nil {
		return arch.HW{}, err
	}
	f1, err := strconv.Atoi(parts[1])
	if err != nil {
		return arch.HW{}, err
	}
	hw := arch.HW{Fanouts: []int{f0, f1}, BufBytes: []int64{l1, l2}}.Defaults()
	return hw, hw.Validate()
}
