// Package digamma is a from-scratch Go reproduction of "DiGamma:
// Domain-aware Genetic Algorithm for HW-Mapping Co-optimization for DNN
// Accelerators" (Kao, Pellauer, Parashar, Krishna — DATE 2022).
//
// It co-optimizes a DNN accelerator's hardware resources (PE hierarchy and
// buffer sizes) together with its mapping strategy (tiling, loop order,
// parallelism, clustering) under a chip-area budget, and ships everything
// the paper's evaluation depends on: a MAESTRO-like analytical cost model,
// a seven-model workload zoo, eight baseline black-box optimizers, the
// GAMMA mapper, and the manual HW/mapping baseline schemes.
//
// Quick start:
//
//	model, _ := digamma.LoadModel("resnet18")
//	best, _ := digamma.Optimize(model, digamma.EdgePlatform(), digamma.Options{
//		Budget: 4000,
//		Seed:   1,
//	})
//	fmt.Println(best.HW, best.Cycles)
package digamma

import (
	"context"
	"errors"
	"fmt"

	"digamma/internal/arch"
	"digamma/internal/coopt"
	"digamma/internal/core"
	"digamma/internal/cost"
	"digamma/internal/dist"
	"digamma/internal/evalcache"
	"digamma/internal/obs"
	"digamma/internal/opt"
	"digamma/internal/workload"
)

// Re-exported domain types. The facade keeps downstream imports to a
// single package while the implementation lives under internal/.
type (
	// Model is a DNN workload: an ordered list of Conv/DSConv/GEMM layers.
	Model = workload.Model
	// Layer is one operator in the K,C,Y,X,R,S mapping space.
	Layer = workload.Layer
	// HW is a concrete accelerator configuration.
	HW = arch.HW
	// Platform is a deployment target (area budget + cost models).
	Platform = arch.Platform
	// Evaluation is a fully scored design point.
	Evaluation = coopt.Evaluation
	// Problem is a co-optimization instance for advanced use.
	Problem = coopt.Problem
	// SearchResult reports a genetic search outcome (best + history).
	SearchResult = core.Result
)

// Objective selects the metric to minimize.
type Objective = coopt.Objective

// Supported objectives.
const (
	Latency            = coopt.Latency
	Energy             = coopt.Energy
	EDP                = coopt.EDP
	LatencyAreaProduct = coopt.LatencyAreaProduct
)

// ModelNames lists the built-in seven-model zoo.
var ModelNames = workload.ModelNames

// LoadModel returns one of the built-in models by name (see ModelNames).
func LoadModel(name string) (Model, error) { return workload.ByName(name) }

// EdgePlatform returns the paper's edge target (0.2 mm² for PEs+buffers).
func EdgePlatform() Platform { return arch.Edge() }

// CloudPlatform returns the paper's cloud target (7.0 mm²).
func CloudPlatform() Platform { return arch.Cloud() }

// Algorithms lists every available search algorithm: the eight baselines
// plus "DiGamma".
func Algorithms() []string {
	return append(append([]string(nil), opt.BaselineNames...), "DiGamma")
}

// Typed option-validation errors, returned (wrapped, with detail) by every
// facade search entry point before any work is done. Serving layers map
// them to client errors (HTTP 400); test with errors.Is.
var (
	// ErrUnknownAlgorithm reports an Options.Algorithm not in Algorithms().
	ErrUnknownAlgorithm = errors.New("digamma: unknown algorithm")
	// ErrUnknownObjective reports an out-of-range Options.Objective.
	ErrUnknownObjective = errors.New("digamma: unknown objective")
	// ErrUnknownFidelity reports an Options.Fidelity not in Fidelities().
	ErrUnknownFidelity = errors.New("digamma: unknown fidelity")
	// ErrUnknownProfile reports an Options.IslandProfiles entry not in
	// IslandProfiles().
	ErrUnknownProfile = errors.New("digamma: unknown island profile")
	// ErrBadIslands reports a negative Options.Islands or
	// Options.MigrateEvery.
	ErrBadIslands = errors.New("digamma: bad island configuration")
)

// Fidelities lists the cost-model fidelity tiers accepted by
// Options.Fidelity, cheapest-first: "bound" (roofline lower-bound screen),
// "analytical" (the default MAESTRO-style model) and "physical"
// (bandwidth/energy derived from explicit NoC + DRAM models).
func Fidelities() []string {
	return append([]string(nil), cost.BackendNames...)
}

// IslandProfiles lists the per-island operator profiles accepted by
// Options.IslandProfiles: "default" (the tuned rates as-is), "explorer"
// (boosted Grow/Mutate/Reorder rates), "exploiter" (high elite fraction,
// strongly divisor-biased tiling) and "scout" (a screening island scored
// on the "bound" fidelity tier whose migrating elites are re-scored by
// the full model).
func IslandProfiles() []string {
	return append([]string(nil), core.ProfileNames...)
}

// Progress is a per-generation search snapshot delivered through
// Options.OnProgress: where the search is, the incumbent fitness, and the
// evaluation-cache counters.
type Progress = core.Progress

// Checkpoint is a versioned, resumable snapshot of a genetic search at a
// generation boundary, delivered through Options.OnCheckpoint and fed back
// through Options.Resume. Serialize with its Marshal method; decode with
// UnmarshalCheckpoint. A resumed run is bit-identical to the uninterrupted
// one.
type Checkpoint = core.Checkpoint

// UnmarshalCheckpoint decodes a checkpoint previously serialized with
// Checkpoint.Marshal, validating its format version.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	return core.UnmarshalCheckpoint(data)
}

// Tracer is a bounded flight recorder for one search: per-generation
// phase spans (init, breed, evaluate, migrate, checkpoint), per-operator
// attribution of fitness improvements and per-island statistics. Install
// one via Options.Trace, then export its Snapshot as Chrome trace_event
// JSON (obs.WriteTraceEvents) or reduce it to a run report
// (obs.BuildReport). Tracing never draws from the search's RNG streams,
// so a traced run's result is bit-identical to an untraced one.
type Tracer = obs.Tracer

// NewTracer returns a tracer whose flight recorder holds spanCap spans
// (0 = obs.DefaultSpanCap); once full, the oldest spans are overwritten.
func NewTracer(spanCap int) *Tracer { return obs.NewTracer(spanCap) }

// Options configures an optimization run.
type Options struct {
	// Budget is the sampling budget — the number of design points the
	// search may evaluate (the paper uses 40000). Default 2000.
	Budget int
	// Seed makes runs reproducible. Default 1.
	Seed int64
	// Objective to minimize. Default Latency.
	Objective Objective
	// Algorithm selects the optimizer (see Algorithms()). Default
	// "DiGamma".
	Algorithm string
	// Workers bounds DiGamma's parallel evaluation workers. 0 uses every
	// available core (the default); 1 forces a serial run. Results are
	// bit-identical at any setting — parallelism changes only wall-clock.
	Workers int
	// Fidelity selects the cost-model tier scoring every design point
	// (see Fidelities()). Default "analytical" — the unmodified default
	// model, bit-identical to earlier releases. "physical" derives
	// interconnect bandwidth/energy and the off-chip bandwidth floor
	// from explicit NoC + DRAM models; "bound" scores only the provable
	// roofline lower bound (an ultra-cheap screening tier).
	Fidelity string
	// Prune enables bound-based pruning inside the genetic engines —
	// DiGamma and the fixed-HW GAMMA mapper: candidates whose roofline
	// lower bound already exceeds the incumbent best skip the full cost
	// model (see core.Config.Prune for the exactness window). Ignored by
	// the baseline vector algorithms.
	Prune bool
	// Islands splits the genetic search into K semi-isolated populations
	// stepped in lockstep, exchanging elites over a deterministic ring
	// every MigrateEvery generations (see core.Config.Islands). ≤ 1 (the
	// default) runs the classic single population — bit-identical to
	// earlier releases. Results depend only on
	// (Seed, Islands, MigrateEvery, IslandProfiles), never on Workers.
	// Ignored by the baseline vector algorithms.
	Islands int
	// MigrateEvery is the island elite-migration period in generations;
	// 0 uses core.DefaultMigrateEvery.
	MigrateEvery int
	// IslandProfiles assigns per-island operator profiles by name (see
	// IslandProfiles()): island i runs the profile at i mod len. Empty
	// runs every island on "default". Heterogeneous profiles — explorer,
	// exploiter, the bound-fidelity scout — are the island model's
	// diversity lever.
	IslandProfiles []string
	// OnProgress, when non-nil, receives a snapshot after every search
	// generation (baseline algorithms report every ~budget/50 samples).
	// It runs on the search goroutine and never influences the search:
	// results are bit-identical with or without it.
	OnProgress func(Progress)
	// CheckpointEvery, when > 0 together with OnCheckpoint, emits a
	// resumable Checkpoint every that-many generations and once more at
	// the cancellation boundary (the drain path). 0 — the default — turns
	// checkpointing off entirely. Genetic engines only; the baseline
	// vector algorithms ignore it.
	CheckpointEvery int
	// OnCheckpoint receives the periodic checkpoints. It runs on the
	// search goroutine, owns persistence, and never influences the
	// search.
	OnCheckpoint func(*Checkpoint)
	// Resume restores the search from a checkpoint instead of a fresh
	// initial population. The model, platform, options and budget must
	// match the checkpointed run's (fingerprint-verified); the resumed
	// run's result is bit-identical to the uninterrupted one.
	Resume *Checkpoint
	// BestEffort makes a cancelled or deadline-exceeded genetic search
	// return its best-so-far evaluation alongside the error — the
	// serving layer's "degraded" per-job deadline semantics — instead of
	// the default nil result.
	BestEffort bool
	// Trace, when non-nil, records the search into the tracer's flight
	// recorder: an umbrella "search" span plus the engine's per-generation
	// phase spans, operator attribution and island statistics. Tracing is
	// off the RNG stream — results are bit-identical with or without it —
	// and a nil Trace costs one branch per phase boundary. Genetic engines
	// only; the baseline vector algorithms record just the umbrella span.
	Trace *Tracer
	// SharedCache, when non-nil, attaches a process-wide shared analysis
	// tier (see AnalysisStore): per-layer cost-model analyses computed by
	// any search probe and feed it, so near-duplicate searches skip
	// re-analysis across requests — and across restarts, with a
	// disk-backed store. Pure reuse of pure functions: results are
	// bit-identical with or without it, and with any store content.
	SharedCache *AnalysisStore
	// WarmStart, together with SharedCache, seeds the search's first
	// full-fidelity island from the nearest prior result in the store
	// (highest per-layer content-hash overlap, same objective/platform/
	// fidelity/mode). Unlike pure cache sharing this changes the search
	// trajectory — the result depends on what ran before — so it is
	// opt-in, and serving layers hash it into their dedup key. Ignored
	// on resumed runs and by the baseline vector algorithms.
	WarmStart bool
	// DistWorkers lists the addresses (host:port) of digammad worker
	// processes (started with -worker) to shard a DiGamma island search
	// across. Empty — the default — runs everything in-process. With
	// workers configured and an eligible run (Islands ≥ 2, no
	// per-evaluation or checkpoint hooks, no warm start, resume or
	// target), the islands execute across the worker processes with
	// deterministic elite migration over the wire; results are
	// bit-identical to the in-process run — a pure function of
	// (Seed, Islands, MigrateEvery, IslandProfiles), never of worker or
	// process count. Ineligible runs and handshake failures fall back to
	// the in-process path, also bit-identically. Worker crashes mid-run
	// are re-homed onto surviving workers; only losing every worker
	// fails the search. Full co-optimization only: OptimizeMapping
	// ignores this. See docs/dist-protocol.md.
	DistWorkers []string
	// Target, when > 0, stops the genetic search at the first generation
	// boundary where the best design is valid with fitness ≤ Target,
	// instead of always spending the whole Budget — time-to-target mode.
	// This is what converts warm starts into wall-clock wins: a search
	// seeded from a near-duplicate prior result opens at or near the
	// target and returns within its first generations. Deterministic
	// (the stop depends only on the trajectory, never on Workers or
	// wall-clock) but budget-truncating, so serving layers hash it into
	// their dedup key. The fitness scale is the Objective's: cycles for
	// Latency, picojoules for Energy, and so on. Ignored by the baseline
	// vector algorithms. Default 0: always run the full budget.
	Target float64

	// placement is the resolved DistWorkers coordinator, built where the
	// model and platform are in scope and attached by runEngine.
	placement core.Placement
}

// withDefaults fills unset fields and validates the rest up front, so a
// bad algorithm or objective fails before any search machinery spins up
// (previously an unknown algorithm survived until deep inside the run).
func (o Options) withDefaults() (Options, error) {
	if o.Budget <= 0 {
		o.Budget = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Algorithm == "" {
		o.Algorithm = "DiGamma"
	}
	if o.Objective > LatencyAreaProduct {
		return o, fmt.Errorf("%w: Objective(%d) (want one of latency, energy, edp, latency-area)",
			ErrUnknownObjective, uint8(o.Objective))
	}
	if o.Algorithm != "DiGamma" {
		if _, err := opt.ByName(o.Algorithm); err != nil {
			return o, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownAlgorithm, o.Algorithm, Algorithms())
		}
	}
	if o.Fidelity == "" {
		o.Fidelity = "analytical"
	}
	if _, err := cost.BackendByName(o.Fidelity); err != nil {
		return o, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownFidelity, o.Fidelity, Fidelities())
	}
	if o.Islands < 0 {
		return o, fmt.Errorf("%w: Islands %d (want ≥ 0)", ErrBadIslands, o.Islands)
	}
	if o.MigrateEvery < 0 {
		return o, fmt.Errorf("%w: MigrateEvery %d (want ≥ 0)", ErrBadIslands, o.MigrateEvery)
	}
	for _, name := range o.IslandProfiles {
		if _, err := core.ProfileByName(name); err != nil {
			return o, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownProfile, name, IslandProfiles())
		}
	}
	return o, nil
}

// problemFor assembles the co-optimization problem for the options,
// applying the selected fidelity backend. The "analytical" default leaves
// the problem untouched — the exact code path earlier releases ran.
func (o Options) problemFor(model Model, platform Platform) (*Problem, error) {
	p, err := coopt.NewProblemSized(model, platform, o.Objective, o.cacheHint(model))
	if err != nil {
		return nil, err
	}
	return o.applyFidelity(p)
}

// cacheHint bounds the analysis cache near the search's actual demand
// (2× B×L headroom against set-conflict evictions, floored so tiny
// requests never thrash); len(model.Layers) over-counts duplicates, which
// only errs toward the safe (larger) side. 0 means the default capacity —
// the right one for long searches. Worker processes size their caches
// with the same hint (it travels in the dist.Spec), keeping per-process
// memory proportional to the run.
func (o Options) cacheHint(model Model) int {
	if o.Budget <= 0 {
		return 0
	}
	hint := max(2*o.Budget*len(model.Layers), 1<<9)
	if hint >= evalcache.DefaultCapacity {
		return 0
	}
	return hint
}

// distPlacement assembles the multi-process coordinator for DistWorkers:
// a serializable Spec describing this exact run (the worker handshake
// cross-checks its config fingerprint) plus the worker pool. Nil when no
// workers are configured or the algorithm is not the genetic engine.
func (o Options) distPlacement(model Model, platform Platform) core.Placement {
	if len(o.DistWorkers) == 0 || o.Algorithm != "DiGamma" {
		return nil
	}
	layers := make([]workload.LayerSpec, len(model.Layers))
	for i, l := range model.Layers {
		layers[i] = workload.Spec(l)
	}
	return &dist.Coordinator{
		Spec: dist.Spec{
			ModelName: model.Name,
			Layers:    layers,
			Platform:  platform,
			Objective: o.Objective,
			Fidelity:  o.Fidelity,
			CacheHint: o.cacheHint(model),
			Config:    o.engineConfig(core.DefaultConfig()),
			Seed:      o.Seed,
		},
		Workers: o.DistWorkers,
	}
}

// applyFidelity wires the options' fidelity tier into an assembled problem.
func (o Options) applyFidelity(p *Problem) (*Problem, error) {
	q, err := p.WithFidelity(o.Fidelity)
	if err != nil {
		// Unreachable after withDefaults, kept as a safety net.
		return nil, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownFidelity, o.Fidelity, Fidelities())
	}
	return o.attachShared(q), nil
}

// engineConfig builds the DiGamma engine configuration for the options.
func (o Options) engineConfig(base core.Config) core.Config {
	if o.Workers != 0 {
		base.Workers = o.Workers
	}
	base.Prune = o.Prune
	base.Islands = o.Islands
	base.MigrateEvery = o.MigrateEvery
	base.Profiles = o.IslandProfiles
	base.CheckpointEvery = o.CheckpointEvery
	base.BestEffort = o.BestEffort
	base.Target = o.Target
	return base
}

// runEngine assembles the seeded genetic engine for a problem, wires the
// progress/durability hooks and runs it. The seeded construction is
// bit-identical to the classic one (core.TestNewSeededMatchesNew pins it)
// and is what makes checkpointing and resume possible. Under BestEffort an
// interrupted run returns its partial best alongside the error.
func (o Options) runEngine(ctx context.Context, p *Problem, base core.Config) (*Evaluation, error) {
	eng, err := core.NewSeeded(p, o.warmConfig(p, o.engineConfig(base)), o.Seed)
	if err != nil {
		return nil, err
	}
	eng.OnGeneration = o.OnProgress
	eng.OnCheckpoint = o.OnCheckpoint
	eng.Resume = o.Resume
	eng.Trace = o.Trace
	eng.Placement = o.placement
	r, err := eng.RunContext(ctx, o.Budget)
	if err != nil {
		if r != nil {
			// Only possible under BestEffort: the engine finalized a
			// partial result at the interrupting generation boundary.
			return r.Best, err
		}
		return nil, err
	}
	o.recordResult(p, r.Best)
	return r.Best, nil
}

// Validate reports whether the options would be accepted by a search
// entry point, without running anything: ErrUnknownAlgorithm or
// ErrUnknownObjective (wrapped, with detail) on bad selections, nil
// otherwise. Serving layers use it to reject requests before queueing.
func (o Options) Validate() error {
	_, err := o.withDefaults()
	return err
}

// Optimize co-optimizes hardware and mapping for a model on a platform
// and returns the best design point found.
func Optimize(model Model, platform Platform, o Options) (*Evaluation, error) {
	return OptimizeContext(context.Background(), model, platform, o)
}

// OptimizeContext is Optimize with cooperative cancellation: the context
// is checked between generations, so cancellation (or a deadline) stops
// the search within one generation without perturbing determinism — a run
// that completes is bit-identical to Optimize. A cancelled run returns an
// error satisfying errors.Is(err, ctx.Err()) and no partial result.
func OptimizeContext(ctx context.Context, model Model, platform Platform, o Options) (*Evaluation, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	defer o.traceSearch()()
	p, err := o.problemFor(model, platform)
	if err != nil {
		return nil, err
	}
	if o.Algorithm == "DiGamma" {
		o.placement = o.distPlacement(model, platform)
		return o.runEngine(ctx, p, core.DefaultConfig())
	}
	alg, err := opt.ByName(o.Algorithm)
	if err != nil {
		// Unreachable after withDefaults, kept as a safety net.
		return nil, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownAlgorithm, o.Algorithm, Algorithms())
	}
	ev, err := p.RunVectorContext(ctx, alg, o.Budget, o.Seed, vectorProgress(o))
	if err != nil {
		return nil, err
	}
	o.recordResult(p, ev)
	return ev, nil
}

// OptimizeMapping searches only the mapping space for a fixed hardware
// configuration (the paper's Fixed-HW use-case, i.e. the GAMMA mapper).
// Buffer capacities in hw become constraints on the mapping.
func OptimizeMapping(model Model, platform Platform, hw HW, o Options) (*Evaluation, error) {
	return OptimizeMappingContext(context.Background(), model, platform, hw, o)
}

// OptimizeMappingContext is OptimizeMapping with cooperative cancellation
// and progress reporting, with the same guarantees as OptimizeContext.
func OptimizeMappingContext(ctx context.Context, model Model, platform Platform, hw HW, o Options) (*Evaluation, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	defer o.traceSearch()()
	p, err := o.problemFor(model, platform)
	if err != nil {
		return nil, err
	}
	fp, err := p.WithFixedHW(hw)
	if err != nil {
		return nil, err
	}
	return o.runEngine(ctx, fp, core.GammaConfig())
}

// traceSearch opens the umbrella "search" span covering an entire
// optimize call — problem assembly included, so setup time lands in the
// report's synthesized "other" row — and returns the closer to defer.
// A no-op closure when tracing is off.
func (o Options) traceSearch() func() {
	if o.Trace == nil {
		return func() {}
	}
	t0 := o.Trace.Now()
	return func() {
		o.Trace.Record(obs.Span{
			Name: obs.PhaseSearch, Cat: obs.CatRun,
			Island: -1, Gen: -1,
			Start: t0, Dur: o.Trace.Now() - t0,
		})
	}
}

// vectorProgress adapts Options.OnProgress to the sample-count reporting
// of the vector baselines (which have no generation structure).
func vectorProgress(o Options) func(samples int, best float64) {
	if o.OnProgress == nil {
		return nil
	}
	return func(samples int, best float64) {
		o.OnProgress(Progress{Samples: samples, Budget: o.Budget, BestFitness: best})
	}
}

// NewProblem exposes the underlying co-optimization problem for callers
// that want to drive searches manually (custom algorithms, ablations).
func NewProblem(model Model, platform Platform, objective Objective) (*Problem, error) {
	return coopt.NewProblem(model, platform, objective)
}
