#!/bin/sh
# loadgen.sh — ReqBench-style load generator for digammad.
#
# Builds cmd/digammad and runs its -selftest mode: N concurrent mixed
# optimize requests (with deliberate duplicates) against an in-process
# server — or a running one via TARGET — reporting submit/end-to-end
# throughput and the dedup hit rate.
#
# Usage:
#   scripts/loadgen.sh                       # 24 requests, 8 clients, in-process
#   REQUESTS=200 CLIENTS=32 scripts/loadgen.sh
#   TARGET=http://localhost:8080 scripts/loadgen.sh   # against a live server
#   BUDGET=1000 scripts/loadgen.sh                    # heavier searches
#   ISLANDS=4 scripts/loadgen.sh                      # island-model searches
set -eu

cd "$(dirname "$0")/.."
REQUESTS=${REQUESTS:-24}
CLIENTS=${CLIENTS:-8}
BUDGET=${BUDGET:-300}
ISLANDS=${ISLANDS:-0}
TARGET=${TARGET:-}

BIN=$(mktemp -d)/digammad
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/digammad

# No exec: the shell must survive the run so the EXIT trap can clean up
# the temporary build directory.
"$BIN" -selftest \
    -requests "$REQUESTS" \
    -clients "$CLIENTS" \
    -budget "$BUDGET" \
    -islands "$ISLANDS" \
    ${TARGET:+-target "$TARGET"}
