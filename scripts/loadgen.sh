#!/bin/sh
# loadgen.sh — ReqBench-style load generator for digammad.
#
# Builds cmd/digammad and runs its -selftest mode: N concurrent mixed
# optimize requests (with deliberate duplicates) against an in-process
# server — or a running one via TARGET — reporting submit/end-to-end
# throughput and the dedup hit rate. The mix is followed by a
# near-duplicate phase: a base GEMM tower, then requests that each
# perturb exactly one layer's width, warm-started and time-to-target
# bounded, with the shared analysis tier's hit rate reported (NOWARM=1
# skips the whole near-duplicate phase).
#
# Usage:
#   scripts/loadgen.sh                       # 24 requests, 8 clients, in-process
#   REQUESTS=200 CLIENTS=32 scripts/loadgen.sh
#   TARGET=http://localhost:8080 scripts/loadgen.sh   # against a live server
#   BUDGET=1000 scripts/loadgen.sh                    # heavier searches
#   ISLANDS=4 scripts/loadgen.sh                      # island-model searches
#   NOWARM=1 scripts/loadgen.sh                       # skip the near-duplicate phase
#   TENANTS=2 scripts/loadgen.sh             # multi-tenant mix + two-tenant
#                                            # contention phase with a
#                                            # per-tenant latency table
#   BATCH=16 scripts/loadgen.sh              # 16-item sweep as one POST /v1/batches
#   SUSTAIN=10s RATE=8 P95_MAX=2s scripts/loadgen.sh  # sustained-load SLO
#                                            # phase: open-loop submits at
#                                            # RATE req/s, fails when p95
#                                            # end-to-end exceeds P95_MAX
#
# Kill-after mode (crash-recovery smoke): starts a durable digammad,
# SIGKILLs it mid-load, restarts it over the same data dir, and verifies
# the interrupted jobs are recovered and finish.
#   KILL_AFTER=2 scripts/loadgen.sh          # SIGKILL 2s into the load
#   KILL_AFTER=2 ADDR=127.0.0.1:18418 BUDGET=20000 scripts/loadgen.sh
set -eu

cd "$(dirname "$0")/.."
REQUESTS=${REQUESTS:-24}
CLIENTS=${CLIENTS:-8}
BUDGET=${BUDGET:-300}
ISLANDS=${ISLANDS:-0}
TENANTS=${TENANTS:-0}
BATCH=${BATCH:-0}
SUSTAIN=${SUSTAIN:-0}
RATE=${RATE:-4}
P95_MAX=${P95_MAX:-0}
TARGET=${TARGET:-}
NOWARM=${NOWARM:-}
KILL_AFTER=${KILL_AFTER:-}
ADDR=${ADDR:-127.0.0.1:18418}

TMP=$(mktemp -d)
BIN=$TMP/digammad
trap 'rm -rf "$TMP"; [ -n "${SRV_PID:-}" ] && kill -9 "$SRV_PID" 2>/dev/null || true' EXIT
go build -o "$BIN" ./cmd/digammad

if [ -z "$KILL_AFTER" ]; then
    # No exec: the shell must survive the run so the EXIT trap can clean
    # up the temporary build directory.
    "$BIN" -selftest \
        -requests "$REQUESTS" \
        -clients "$CLIENTS" \
        -budget "$BUDGET" \
        -islands "$ISLANDS" \
        -tenants "$TENANTS" \
        -batch "$BATCH" \
        -sustain "$SUSTAIN" \
        -rate "$RATE" \
        -p95-max "$P95_MAX" \
        ${NOWARM:+-no-warm} \
        ${TARGET:+-target "$TARGET"}
    exit 0
fi

# --- kill-after mode ---------------------------------------------------
DATA=$TMP/data
URL="http://$ADDR"

wait_healthy() {
    i=0
    while ! curl -fsS "$URL/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "loadgen: digammad did not come up at $URL" >&2; exit 1; }
        sleep 0.1
    done
}

metric() { # metric NAME -> value (0 when absent)
    curl -fsS "$URL/metrics" | awk -v m="$1" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

"$BIN" -addr "$ADDR" -data-dir "$DATA" -checkpoint-every 2 &
SRV_PID=$!
wait_healthy
echo "loadgen: durable digammad up (pid $SRV_PID, data $DATA)"

# Fire the load in the background and SIGKILL the server mid-flight. The
# selftest client is expected to fail — its server just died — so don't
# let its exit status stop the script.
"$BIN" -selftest -target "$URL" \
    -requests "$REQUESTS" -clients "$CLIENTS" -budget "$BUDGET" -islands "$ISLANDS" \
    >"$TMP/load.log" 2>&1 &
LOAD_PID=$!
sleep "$KILL_AFTER"
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true
echo "loadgen: SIGKILLed digammad after ${KILL_AFTER}s of load"

"$BIN" -addr "$ADDR" -data-dir "$DATA" -checkpoint-every 2 &
SRV_PID=$!
wait_healthy
RECOVERED=$(metric digammad_jobs_recovered_total)
echo "loadgen: restarted; digammad_jobs_recovered_total=$RECOVERED"
if [ "$RECOVERED" -lt 1 ]; then
    echo "loadgen: FAIL — no jobs recovered after SIGKILL (accepted work was lost)" >&2
    exit 1
fi

# Wait for every recovered job to reach a terminal state.
i=0
while :; do
    LIVE=$(curl -fsS "$URL/v1/jobs" | grep -c '"state": "\(queued\|running\)"' || true)
    [ "$LIVE" -eq 0 ] && break
    i=$((i + 1))
    [ "$i" -ge 600 ] && { echo "loadgen: FAIL — $LIVE recovered jobs still unfinished" >&2; exit 1; }
    sleep 0.5
done
DONE=$(metric 'digammad_jobs{state="done"}')
echo "loadgen: recovery complete — $DONE jobs done after restart"

# Observability smoke on the recovered server: the histogram metrics must
# expose well-formed families, and one finished job's trace and report
# must parse. A job recovered terminal serves its persisted report; a job
# re-run after recovery also has a live flight recorder.
curl -fsS "$URL/metrics" | grep -q '^# TYPE digammad_build_info gauge$' \
    || { echo "loadgen: FAIL — /metrics missing digammad_build_info" >&2; exit 1; }
curl -fsS "$URL/metrics" | grep -q '^# TYPE digammad_search_latency_seconds histogram$' \
    || { echo "loadgen: FAIL — /metrics missing the latency histogram" >&2; exit 1; }
JOB=$(curl -fsS "$URL/v1/jobs" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' | head -1)
if [ -n "$JOB" ]; then
    EVENTS=$(curl -fsS "$URL/v1/jobs/$JOB/trace" | grep -o '"ph":' | wc -l || true)
    PHASES=$(curl -fsS "$URL/v1/jobs/$JOB/report" | grep -o '"name":' | wc -l || true)
    if [ "$EVENTS" -lt 1 ] && [ "$PHASES" -lt 1 ]; then
        echo "loadgen: FAIL — job $JOB served neither trace events nor report phases" >&2
        exit 1
    fi
    echo "loadgen: observability smoke — job $JOB: $EVENTS trace events, $PHASES report rows"
fi
kill "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
echo "loadgen: kill-after smoke PASS"
