#!/bin/sh
# bench.sh — record the core benchmark trajectory.
#
# Runs the evaluation-hot-path benchmarks with -benchmem and writes
# BENCH_core.json: one record per benchmark with ns/op, B/op and allocs/op
# (plus bestfit/op for the island-vs-single search rows), so future PRs
# can compare against the numbers this tree produces.
#
# Usage:
#   scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh     # longer runs for stabler numbers
#   ISLANDS=8 scripts/bench.sh        # island count for the served island row
set -eu

cd "$(dirname "$0")/.."
OUT=${1:-BENCH_core.json}
BENCHTIME=${BENCHTIME:-1s}
ISLANDS=${ISLANDS:-4}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
    -bench 'BenchmarkEvaluate$|BenchmarkEvaluatePhysical$|BenchmarkCostAnalyze$|BenchmarkDiGammaSearch$|BenchmarkDiGammaSearchDelta$|BenchmarkDiGammaSearchPruned$|BenchmarkDiGammaSearchIslands$|BenchmarkDiGammaSearchTraced$|BenchmarkDiGammaSearchSharedCache$' \
    -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

# Serving rows: one end-to-end served search (submit → queue → run →
# long-poll), the same search on the K-island engine (ISLANDS knob), one
# dedup hit served straight from the result store, the near-duplicate
# warm-traffic pair (cold vs shared-tier + warm-start + time-to-target;
# the warm/cold ratio is the cross-request reuse headline, gated ≥ 2× by
# bench_guard.sh), the K=32 sweep pair (independent submits vs one batch;
# the independent/batch ratio is the batch amortization headline, gated
# ≥ 1.5× by bench_guard.sh), and the 4-tenant fair-scheduling mix.
DIGAMMAD_BENCH_ISLANDS=$ISLANDS go test -run '^$' \
    -bench 'BenchmarkServeOptimize$|BenchmarkServeOptimizeIslands$|BenchmarkServeDedup$|BenchmarkServeWarmTraffic$|BenchmarkServeBatchSweep$|BenchmarkServeMultiTenant$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/serve/ | tee -a "$RAW"

# Distributed island sharding: the same 8-island EvalDelay-bound search
# in-process vs sharded across 4 spawned worker processes. bestfit/op must
# be identical between the rows — distribution is a pure wall-clock
# optimization (bench_guard.sh gates the speedup and the equality).
go test -run '^$' -bench 'BenchmarkDistIslands$' \
    -benchtime "$BENCHTIME" ./internal/dist/ | tee -a "$RAW"

# Served tail latency: the selftest's open-loop sustained phase over a
# small rate sweep, recorded as mean/p95/p99 rows so SLO drift shows up in
# the same trajectory file as the throughput rows.
for RATE in ${SUSTAIN_RATES:-2 6}; do
    go run ./cmd/digammad -selftest -requests 8 -clients 4 -no-warm \
        -budget "${SUSTAIN_BUDGET:-240}" -sustain "${SUSTAIN_DUR:-4s}" \
        -rate "$RATE" -bench-lines -log-level error | grep '^Benchmark' | tee -a "$RAW"
done

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)           # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""; bestfit = ""; reused = ""; hitrate = ""; sharedhits = ""; p95 = ""; p99 = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")         ns         = $(i - 1)
        if ($(i) == "B/op")          bytes      = $(i - 1)
        if ($(i) == "allocs/op")     allocs     = $(i - 1)
        if ($(i) == "bestfit/op")    bestfit    = $(i - 1)
        if ($(i) == "reused/op")     reused     = $(i - 1)
        if ($(i) == "hitrate/op")    hitrate    = $(i - 1)
        if ($(i) == "sharedhits/op") sharedhits = $(i - 1)
        if ($(i) == "p95_ns/op")     p95        = $(i - 1)
        if ($(i) == "p99_ns/op")     p99        = $(i - 1)
    }
    if (ns == "") next
    if (!first) print ","
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
        name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
    if (bestfit != "") printf ", \"bestfit_per_op\": %s", bestfit
    if (reused != "") printf ", \"reused_per_op\": %s", reused
    if (hitrate != "") printf ", \"hitrate_per_op\": %s", hitrate
    if (sharedhits != "") printf ", \"sharedhits_per_op\": %s", sharedhits
    if (p95 != "") printf ", \"p95_ns_per_op\": %s", p95
    if (p99 != "") printf ", \"p99_ns_per_op\": %s", p99
    printf "}"
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
