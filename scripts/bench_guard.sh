#!/bin/sh
# bench_guard.sh — CI perf guardrail for the evaluation hot path.
#
# Runs the end-to-end search benchmarks and fails when allocs/op or
# (machine-calibrated) ns/op regress more than TOL percent against the
# committed BENCH_core.json baseline.
#
# Two gates, different trust levels:
#
#   - allocs/op is nearly deterministic and machine-independent: the gate
#     is a straight +TOL% (plus 2 allocs absolute slack so slab-allocated
#     0-alloc baselines don't become exact-zero requirements). This is
#     the high-signal tripwire for pooling/arena regressions.
#   - ns/op depends on the machine the baseline was recorded on. The
#     limit is therefore scaled by how much slower this machine runs the
#     single-threaded BenchmarkCostAnalyze reference than the baseline
#     machine did (never scaled below 1×, so a faster runner keeps the
#     recorded limit rather than tightening it). The calibration absorbs
#     clock-speed differences; core-count differences in the parallel
#     search rows are what the loose TOL is for. A real regression — an
#     O(L) → O(L²) slip in the delta path, a cache probe gone quadratic —
#     measures 2× or worse and clears any plausible noise.
#
# Tolerance: TOL defaults to 30 (percent), documented loose for shared CI
# runners. The guarded rows are ms-scale searches (thousands of internal
# evaluations per op); the µs-scale micro rows in BENCH_core.json swing
# ±30% with heap state alone and are recorded for trend reading, not
# gating.
#
# Usage:
#   scripts/bench_guard.sh [baseline.json]
#   TOL=50 BENCHTIME=2s scripts/bench_guard.sh
#
# A third gate covers the cross-request reuse tentpole: the serve-level
# near-duplicate stream (BenchmarkServeWarmTraffic) must run ≥ WARM_MIN×
# (default 2×) faster warm — shared tier + warm_start + time-to-target —
# than cold. The ratio compares two runs on this machine, so it needs no
# calibration and holds across runner speeds.
#
# A fourth gate covers batch amortization: submitting a K=32 related
# sweep as one POST /v1/batches (one WAL fsync, one capacity check, one
# admission pass) must run ≥ BATCH_MIN× (default 1.5×) faster than K
# independent submits of the same specs (BenchmarkServeBatchSweep).
# Same-machine ratio, no calibration needed.
#
# A fifth gate covers distributed island sharding: the 8-island
# EvalDelay-bound search across 4 spawned worker processes
# (BenchmarkDistIslands) must run ≥ DIST_MIN× (default 1.3×) faster than
# the same search in one process — and its bestfit/op must be *identical*
# (distribution is a pure wall-clock optimization; a bestfit drift means
# the determinism contract broke, which is worse than slowness).
set -eu

cd "$(dirname "$0")/.."
BASE=${1:-BENCH_core.json}
TOL=${TOL:-30}
BENCHTIME=${BENCHTIME:-1s}
WARM_MIN=${WARM_MIN:-2.0}
BATCH_MIN=${BATCH_MIN:-1.5}
DIST_MIN=${DIST_MIN:-1.3}

[ -f "$BASE" ] || { echo "bench_guard: no baseline $BASE"; exit 1; }

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkCostAnalyze$|BenchmarkDiGammaSearch$' \
    -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v tol="$TOL" -v base="$BASE" '
BEGIN {
    # Parse the committed baseline: one {"name": ..., "ns_per_op": ...,
    # "allocs_per_op": ...} record per line.
    while ((getline line < base) > 0) {
        if (line !~ /"name"/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        al = line; sub(/.*"allocs_per_op": /, "", al); sub(/[,}].*/, "", al)
        base_ns[name] = ns + 0
        base_al[name] = al + 0
    }
    close(base)
    failed = 0
    checked = 0
    ref = "BenchmarkCostAnalyze"
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; al = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i - 1)
        if ($(i) == "allocs/op") al = $(i - 1)
    }
    if (ns == "") next
    now_ns[name] = ns + 0
    now_al[name] = al
}
END {
    # Machine calibration from the single-threaded reference row.
    scale = 1
    if (ref in now_ns && base_ns[ref] > 0) {
        scale = now_ns[ref] / base_ns[ref]
        if (scale < 1) scale = 1
        printf "bench_guard: machine scale %.2fx (reference %s: %.0f vs baseline %.0f ns/op)\n", \
            scale, ref, now_ns[ref], base_ns[ref]
    }
    for (name in now_ns) {
        if (name == ref || !(name in base_ns)) continue
        checked++
        lim_ns = base_ns[name] * scale * (1 + tol / 100)
        lim_al = base_al[name] * (1 + tol / 100) + 2
        if (now_ns[name] > lim_ns) {
            printf "REGRESSION %s: %.0f ns/op > %.0f (baseline %.0f, scale %.2fx, +%d%%)\n", \
                name, now_ns[name], lim_ns, base_ns[name], scale, tol
            failed = 1
        }
        if (now_al[name] != "" && now_al[name] + 0 > lim_al) {
            printf "REGRESSION %s: %d allocs/op > %.0f (baseline %d +%d%% +2)\n", \
                name, now_al[name], lim_al, base_al[name], tol
            failed = 1
        }
    }
    if (checked == 0) { print "bench_guard: no benchmarks matched the baseline"; exit 1 }
    printf "bench_guard: %d benchmarks checked against %s (tolerance +%d%%)\n", checked, base, tol
    exit failed
}
' "$RAW"

# --- near-duplicate reuse gate -----------------------------------------
WRAW=$(mktemp)
trap 'rm -f "$RAW" "$WRAW"' EXIT

go test -run '^$' -bench 'BenchmarkServeWarmTraffic$' \
    -benchtime "$BENCHTIME" ./internal/serve/ | tee "$WRAW"

awk -v min="$WARM_MIN" '
/^BenchmarkServeWarmTraffic\/cold/ { cold = $3 }
/^BenchmarkServeWarmTraffic\/warm/ { warm = $3 }
END {
    if (cold == "" || warm == "" || warm + 0 == 0) {
        print "bench_guard: warm-traffic rows missing"; exit 1
    }
    ratio = cold / warm
    printf "bench_guard: near-duplicate warm speedup %.2fx (cold %.0f ns/op, warm %.0f ns/op, floor %.1fx)\n", \
        ratio, cold, warm, min
    if (ratio < min) {
        printf "REGRESSION BenchmarkServeWarmTraffic: warm/cold speedup %.2fx < %.1fx\n", ratio, min
        exit 1
    }
}
' "$WRAW"

# --- batch amortization gate -------------------------------------------
BRAW=$(mktemp)
trap 'rm -f "$RAW" "$WRAW" "$BRAW"' EXIT

go test -run '^$' -bench 'BenchmarkServeBatchSweep$' \
    -benchtime "$BENCHTIME" ./internal/serve/ | tee "$BRAW"

awk -v min="$BATCH_MIN" '
/^BenchmarkServeBatchSweep\/independent/ { indep = $3 }
/^BenchmarkServeBatchSweep\/batch/       { batch = $3 }
END {
    if (indep == "" || batch == "" || batch + 0 == 0) {
        print "bench_guard: batch-sweep rows missing"; exit 1
    }
    ratio = indep / batch
    printf "bench_guard: batch sweep speedup %.2fx (independent %.0f ns/op, batch %.0f ns/op, floor %.1fx)\n", \
        ratio, indep, batch, min
    if (ratio < min) {
        printf "REGRESSION BenchmarkServeBatchSweep: independent/batch speedup %.2fx < %.1fx\n", ratio, min
        exit 1
    }
}
' "$BRAW"

# --- distributed scaling gate ------------------------------------------
DIRAW=$(mktemp)
trap 'rm -f "$RAW" "$WRAW" "$BRAW" "$DIRAW"' EXIT

go test -run '^$' -bench 'BenchmarkDistIslands$' \
    -benchtime "$BENCHTIME" ./internal/dist/ | tee "$DIRAW"

awk -v min="$DIST_MIN" '
/^BenchmarkDistIslands\/single/ {
    single = $3
    for (i = 2; i <= NF; i++) if ($(i) == "bestfit/op") sfit = $(i - 1)
}
/^BenchmarkDistIslands\/workers4/ {
    dist = $3
    for (i = 2; i <= NF; i++) if ($(i) == "bestfit/op") dfit = $(i - 1)
}
END {
    if (single == "" || dist == "" || dist + 0 == 0) {
        print "bench_guard: dist-islands rows missing"; exit 1
    }
    ratio = single / dist
    printf "bench_guard: distributed 4-process speedup %.2fx (single %.0f ns/op, workers4 %.0f ns/op, floor %.1fx)\n", \
        ratio, single, dist, min
    if (sfit != dfit) {
        printf "REGRESSION BenchmarkDistIslands: bestfit diverged (single %s vs workers4 %s) — determinism contract broken\n", sfit, dfit
        exit 1
    }
    if (ratio < min) {
        printf "REGRESSION BenchmarkDistIslands: single/workers4 speedup %.2fx < %.1fx\n", ratio, min
        exit 1
    }
}
' "$DIRAW"
