package digamma

import (
	"errors"
	"testing"
)

// TestOptionsFidelityValidation: fidelity tiers validate up front with
// the typed error, like algorithms and objectives do.
func TestOptionsFidelityValidation(t *testing.T) {
	for _, fid := range Fidelities() {
		if err := (Options{Fidelity: fid}).Validate(); err != nil {
			t.Errorf("fidelity %q rejected: %v", fid, err)
		}
	}
	err := (Options{Fidelity: "exact"}).Validate()
	if !errors.Is(err, ErrUnknownFidelity) {
		t.Errorf("bad fidelity: got %v, want ErrUnknownFidelity", err)
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("empty fidelity (analytical default) rejected: %v", err)
	}
}

// TestOptimizePhysicalFidelity: the physical tier runs end to end through
// the facade, deterministically, and actually changes the problem — the
// returned hardware carries the derived interconnect model.
func TestOptimizePhysicalFidelity(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Budget: 200, Seed: 1, Fidelity: "physical", Workers: 1}
	a, err := Optimize(model, EdgePlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(model, EdgePlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != b.Fitness {
		t.Errorf("physical tier not deterministic: %.9e vs %.9e", a.Fitness, b.Fitness)
	}
	if a.HW.NoC == nil || a.HW.DRAMWordsPerCycle <= 0 {
		t.Errorf("physical search returned hardware without derived NoC/DRAM parameters: %+v", a.HW)
	}

	plain, err := Optimize(model, EdgePlatform(), Options{Budget: 200, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.HW.NoC != nil {
		t.Error("analytical search grew a NoC model")
	}
}

// TestOptimizeMappingPrune: the screen also works in fixed-HW (GAMMA)
// mode, where the bound is mapping-dependent through spatial occupancy.
func TestOptimizeMappingPrune(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	hw := HW{Fanouts: []int{16, 8}, BufBytes: []int64{4 << 10, 512 << 10}}
	ev, err := OptimizeMapping(model, EdgePlatform(), hw, Options{Budget: 300, Seed: 1, Prune: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Pruned {
		t.Error("pruned GAMMA search returned a bound-screened best")
	}
}
