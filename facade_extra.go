package digamma

import (
	"context"
	"io"
	"math/rand"
	"os"

	"digamma/internal/coopt"
	"digamma/internal/core"
	"digamma/internal/report"
	"digamma/internal/workload"
)

// ParseModelCSV reads a custom model in the GAMMA-style CSV layer format:
//
//	name,type,K,C,Y,X,R,S,strideY,strideX,count
//
// with type ∈ {CONV, DSCONV, GEMM}. See internal/workload for details.
func ParseModelCSV(name string, r io.Reader) (Model, error) {
	return workload.ParseCSV(name, r)
}

// LoadModelCSVFile reads a custom model from a CSV file; the model is
// named after the path.
func LoadModelCSVFile(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return Model{}, err
	}
	defer f.Close()
	return workload.ParseCSV(path, f)
}

// WriteModelCSV renders a model in the CSV layer format.
func WriteModelCSV(w io.Writer, m Model) error { return workload.WriteCSV(w, m) }

// OptimizeMulti co-optimizes one accelerator for a *set* of models (the
// paper's "takes in any DNN model(s)"): the hardware is shared, per-layer
// mappings are searched for every model, and the fitness is the weighted
// sum across models (nil weights = equal).
func OptimizeMulti(models []Model, weights []float64, platform Platform, o Options) (*Evaluation, error) {
	return OptimizeMultiContext(context.Background(), models, weights, platform, o)
}

// OptimizeMultiContext is OptimizeMulti with cooperative cancellation and
// progress reporting, with the same guarantees as OptimizeContext.
func OptimizeMultiContext(ctx context.Context, models []Model, weights []float64, platform Platform, o Options) (*Evaluation, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	p, err := coopt.NewMultiProblem(models, weights, platform, o.Objective)
	if err != nil {
		return nil, err
	}
	if p, err = o.applyFidelity(p); err != nil {
		return nil, err
	}
	if o.Algorithm == "DiGamma" {
		return o.runEngine(ctx, p, core.DefaultConfig())
	}
	return OptimizeContext(ctx, p.Model, platform, o)
}

// TuneOptions re-exports the hyper-parameter tuning knobs.
type TuneOptions = core.TuneOptions

// Config re-exports DiGamma's hyper-parameter set.
type Config = core.Config

// Tune searches DiGamma's hyper-parameters for a problem with Bayesian
// optimization, reproducing the paper's footnote-3 flow. Expensive:
// Trials × BudgetPerTrial design-point evaluations.
func Tune(model Model, platform Platform, objective Objective, o TuneOptions) (Config, error) {
	p, err := coopt.NewProblem(model, platform, objective)
	if err != nil {
		return Config{}, err
	}
	cfg, _, err := core.Tune(p, o)
	return cfg, err
}

// WriteReport serializes an evaluation as indented JSON for archival or
// external tooling.
func WriteReport(w io.Writer, ev *Evaluation) error {
	return report.FromEvaluation(ev).Write(w)
}

// ParetoFront runs a multi-objective DiGamma search (NSGA-II-style
// non-dominated sorting over the same domain-aware operators) and returns
// the constraint-valid Pareto front, sorted by the first objective.
func ParetoFront(model Model, platform Platform, objectives []Objective, o Options) ([]*Evaluation, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	p, err := coopt.NewProblem(model, platform, objectives[0])
	if err != nil {
		return nil, err
	}
	eng, err := core.New(p, core.DefaultConfig(), randNew(o.Seed))
	if err != nil {
		return nil, err
	}
	r, err := eng.RunPareto(o.Budget, objectives)
	if err != nil {
		return nil, err
	}
	return r.Front, nil
}

// randNew builds the deterministic RNG used by facade searches.
func randNew(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}
