package digamma

import (
	"bytes"
	"math"
	"testing"

	"digamma/internal/coopt"
	"digamma/internal/core"
	"digamma/internal/report"
	"digamma/internal/schemes"
)

// End-to-end: co-optimize, serialize the design, read it back, and verify
// the recorded metrics agree with a fresh evaluation of the same genome —
// the full archive/restore loop a downstream user relies on.
func TestEndToEndArchiveRestore(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	best, err := Optimize(model, EdgePlatform(), Options{Budget: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, best); err != nil {
		t.Fatal(err)
	}
	back, err := report.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics.Cycles != best.Cycles {
		t.Errorf("archived cycles %g != %g", back.Metrics.Cycles, best.Cycles)
	}

	// Re-evaluate the genome through the problem: metrics must reproduce.
	p, err := NewProblem(model, EdgePlatform(), Latency)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.Evaluate(best.Genome)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != best.Cycles || again.Valid != best.Valid {
		t.Errorf("re-evaluation drifted: %g/%v vs %g/%v",
			again.Cycles, again.Valid, best.Cycles, best.Valid)
	}
}

// The three search entry points (co-opt, fixed-HW, fixed-mapping) must be
// consistent: fixing DiGamma's own found HW and re-running the mapping
// search cannot be dramatically worse than the co-opt result.
func TestSearchModesConsistent(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	co, err := Optimize(model, EdgePlatform(), Options{Budget: 600, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if !co.Valid {
		t.Fatal("co-opt found nothing valid")
	}
	remap, err := OptimizeMapping(model, EdgePlatform(), co.HW, Options{Budget: 600, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if !remap.Valid {
		t.Fatal("mapping search on the co-opt HW found nothing valid")
	}
	if remap.Cycles > co.Cycles*1.5 {
		t.Errorf("fixed-HW remap (%g) ≫ co-opt (%g) on the same hardware",
			remap.Cycles, co.Cycles)
	}
}

// Fixed-mapping HW search through the framework must land in the same
// ballpark as the grid-search baseline with the same style.
func TestFixedMappingSearchEndToEnd(t *testing.T) {
	model, err := LoadModel("dlrm")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := schemes.GridSearchHW(schemes.DLALike, model, EdgePlatform(), coopt.Latency)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(model, EdgePlatform(), Latency)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := p.WithFixedMapping(schemes.Rule(schemes.DLALike))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(fp, core.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if r.Best == nil || !r.Best.Valid {
		t.Fatal("fixed-mapping search found nothing valid")
	}
	// The GA explores a superset of the grid's HW points; allow slack for
	// the small budget but demand the same order of magnitude.
	ratio := r.Best.Cycles / grid.Best.Cycles
	if math.IsNaN(ratio) || ratio > 3 {
		t.Errorf("fixed-mapping GA (%g cycles) far off grid baseline (%g)",
			r.Best.Cycles, grid.Best.Cycles)
	}
}

// Objectives steer outcomes: an energy-optimized design must use no more
// energy than a latency-optimized one (same budget/seed).
func TestObjectiveSteering(t *testing.T) {
	model, err := LoadModel("mobilenetv2")
	if err != nil {
		t.Fatal(err)
	}
	lat, err := Optimize(model, EdgePlatform(), Options{Budget: 800, Seed: 17, Objective: Latency})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Optimize(model, EdgePlatform(), Options{Budget: 800, Seed: 17, Objective: Energy})
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Valid || !eng.Valid {
		t.Skip("search did not converge at this budget")
	}
	if eng.EnergyPJ > lat.EnergyPJ*1.05 {
		t.Errorf("energy objective produced more energy (%g) than latency objective (%g)",
			eng.EnergyPJ, lat.EnergyPJ)
	}
}
