package digamma

import (
	"fmt"

	"digamma/internal/core"
	"digamma/internal/evalstore"
	"digamma/internal/mapping"
	"digamma/internal/space"
	"digamma/internal/workload"
)

// AnalysisStore is the process-wide shared analysis tier: a second-level
// cache of per-layer cost-model analyses that outlives any one search.
// Per-layer analyses are pure functions of (layer shape, hardware
// context, mapping block, cost-model version), so sharing them across
// searches — even across restarts, with a disk-backed store — never
// changes a result, only how fast it is reached: a search with
// Options.SharedCache set returns bit-identical results to one without.
//
// A store is safe for concurrent use by any number of searches. Attach
// one store per process (or per serving daemon) and reuse it.
type AnalysisStore = evalstore.Store

// AnalysisStats is an AnalysisStore's counter snapshot.
type AnalysisStats = evalstore.Stats

// NewAnalysisStore returns a memory-only shared analysis tier.
func NewAnalysisStore() *AnalysisStore { return evalstore.NewMemory() }

// OpenAnalysisStore opens (creating if needed) a disk-backed shared
// analysis tier rooted at dir. Entries persist across restarts in
// CRC-framed append-only segments versioned by the cost-model
// fingerprint; segments written by a different model version are
// discarded at open. Disk failures demote the store to memory-only
// operation — they never fail a search.
func OpenAnalysisStore(dir string) (*AnalysisStore, error) {
	return evalstore.Open(evalstore.Options{Dir: dir})
}

// attachShared wires the options' shared tier into an assembled problem.
func (o Options) attachShared(p *Problem) *Problem {
	if o.SharedCache == nil {
		return p
	}
	return p.WithShared(o.SharedCache)
}

// warmIdentity scopes warm-start matching: a search only seeds from
// priors with the same objective, platform, fidelity tier and search
// mode. (Layer shapes, the HW context and the cost-model version are
// already folded into the per-layer hashes the index matches on.)
func (o Options) warmIdentity(p *Problem) string {
	mode := "co-opt"
	if p.FixedHW != nil {
		mode = "fixed-hw"
	}
	return fmt.Sprintf("%s|%s|%s|%s", o.Objective, p.Platform.Name, o.Fidelity, mode)
}

// warmConfig resolves the warm-start seed for a run: the stored result
// whose per-layer hash set overlaps this problem's the most, adapted
// into one genome that seeds the first full-fidelity island. No-op
// without WarmStart + SharedCache, and on resumed runs (the checkpointed
// populations already embody any seeding).
func (o Options) warmConfig(p *Problem, base core.Config) core.Config {
	if !o.WarmStart || o.SharedCache == nil || o.Resume != nil {
		return base
	}
	layers := specHashes(p)
	if len(layers) == 0 {
		return base
	}
	rec, _, ok := o.SharedCache.Nearest(o.warmIdentity(p), layers)
	if !ok {
		return base
	}
	base.Warm = []space.Genome{warmGenome(rec, layers, p.Space.Layers)}
	return base
}

// specHashes returns the problem's per-layer context digests, aligned
// with its unique layers. Empty when no shared tier is attached.
func specHashes(p *Problem) []string {
	ctxs := p.SharedContexts()
	out := make([]string, len(ctxs))
	for i := range ctxs {
		out[i] = ctxs[i].SpecHash()
	}
	return out
}

// warmGenome adapts a stored prior into a seed genome for this problem:
// layers present in the prior (by content hash, each stored layer used
// at most once) take its mapping block; unmatched layers fall back to
// the positionally corresponding block, with every tile snapped to the
// nearest divisor of the target layer's bounds — a tiling tuned for a
// near-duplicate shape typically lands one ragged edge away from clean
// on the new dims, and that padding penalty would otherwise cost the
// seeded search a polish generation before it looks as good as the
// prior it came from. The genome is only plausible here — the engine
// repairs it against the target space before use.
func warmGenome(rec evalstore.ResultRecord, layers []string, target []workload.Layer) space.Genome {
	g := space.Genome{
		Fanouts: append([]int(nil), rec.Fanouts...),
		Maps:    make([]mapping.Mapping, len(layers)),
	}
	used := make([]bool, len(rec.Layers))
	for i, h := range layers {
		src := i % len(rec.Maps)
		for j, s := range rec.Layers {
			if !used[j] && s == h {
				used[j] = true
				src = j
				break
			}
		}
		g.Maps[i] = snapTiles(rec.Maps[src].Mapping(), target[i])
	}
	return g
}

// snapTiles walks one mapping block outermost-in, snapping each tile to
// the nearest divisor of its enclosing extent (the layer bound at the
// outermost level, the enclosing level's snapped tile below — the same
// nesting discipline the divisor-biased tile mutation samples under).
// The mapping is owned by the caller; snapping mutates it in place.
func snapTiles(m mapping.Mapping, l workload.Layer) mapping.Mapping {
	for d := workload.Dim(0); d < workload.NumDims; d++ {
		bound := l.Dim(d)
		for li := len(m.Levels) - 1; li >= 0; li-- {
			t := mapping.NearestDivisor(bound, m.Levels[li].Tiles[d])
			m.Levels[li].Tiles[d] = t
			bound = t
		}
	}
	return m
}

// recordResult files a completed search's best design into the shared
// store's warm-start index, so later near-duplicate searches can seed
// from it. Pruned or genome-less evaluations (manual baselines) are
// skipped.
func (o Options) recordResult(p *Problem, ev *Evaluation) {
	if o.SharedCache == nil || ev == nil || ev.Pruned || len(ev.Genome.Maps) == 0 {
		return
	}
	layers := specHashes(p)
	if len(layers) != len(ev.Genome.Maps) {
		return
	}
	maps := make([]evalstore.MappingRecord, len(ev.Genome.Maps))
	for i, m := range ev.Genome.Maps {
		maps[i] = evalstore.NewMappingRecord(m)
	}
	o.SharedCache.RecordResult(evalstore.ResultRecord{
		Identity: o.warmIdentity(p),
		Layers:   layers,
		Fanouts:  append([]int(nil), ev.Genome.Fanouts...),
		Maps:     maps,
		Fitness:  ev.Fitness,
	})
}
