package digamma

import (
	"testing"
)

// TestSharedCacheBitIdentical: attaching a shared analysis tier — empty,
// pre-populated by a different search, or reused across runs — never
// changes a result. Pure cache sharing only trades recomputation for
// lookup; the golden matrix here spans objectives, the fixed-HW mapper,
// islands and a vector baseline.
func TestSharedCacheBitIdentical(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	store := NewAnalysisStore()

	cases := []struct {
		name string
		opts Options
	}{
		{"latency", Options{Budget: 300, Seed: 3}},
		{"edp", Options{Budget: 300, Seed: 5, Objective: EDP}},
		{"islands", Options{Budget: 400, Seed: 9, Islands: 3, MigrateEvery: 2,
			IslandProfiles: []string{"default", "explorer", "scout"}}},
		{"baseline", Options{Budget: 200, Seed: 2, Algorithm: "Random"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cold, err := Optimize(model, EdgePlatform(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			shared := tc.opts
			shared.SharedCache = store
			// Twice against the same store: the first run feeds it, the
			// second reads analyses the first one (and every earlier case)
			// inserted.
			for pass := 0; pass < 2; pass++ {
				got, err := Optimize(model, EdgePlatform(), shared)
				if err != nil {
					t.Fatal(err)
				}
				if got.Fitness != cold.Fitness || got.Cycles != cold.Cycles {
					t.Fatalf("pass %d: shared tier changed the result: %.12e vs %.12e fitness",
						pass, got.Fitness, cold.Fitness)
				}
			}
		})
	}
	if st := store.Stats(); st.Hits == 0 || st.Inserts == 0 {
		t.Errorf("shared tier never used: %+v", st)
	}

	// Fixed-HW mapper: the shared keys fold the fixed hardware in, so a
	// store warmed by co-opt searches is still sound here.
	base, err := Optimize(model, EdgePlatform(), Options{Budget: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mOpts := Options{Budget: 200, Seed: 4}
	cold, err := OptimizeMapping(model, EdgePlatform(), base.HW, mOpts)
	if err != nil {
		t.Fatal(err)
	}
	mOpts.SharedCache = store
	got, err := OptimizeMapping(model, EdgePlatform(), base.HW, mOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fitness != cold.Fitness {
		t.Errorf("fixed-HW shared run differs: %.12e vs %.12e", got.Fitness, cold.Fitness)
	}
}

// TestSharedCacheCrossSearchHits: a repeat of the same search against a
// warm store recovers analyses from it (the whole point of the tier).
func TestSharedCacheCrossSearchHits(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	store := NewAnalysisStore()
	opts := Options{Budget: 300, Seed: 7, SharedCache: store}
	if _, err := Optimize(model, EdgePlatform(), opts); err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	if before.Inserts == 0 {
		t.Fatalf("first search inserted nothing: %+v", before)
	}
	if _, err := Optimize(model, EdgePlatform(), opts); err != nil {
		t.Fatal(err)
	}
	after := store.Stats()
	if after.Hits <= before.Hits {
		t.Errorf("repeat search hit the shared tier %d times (was %d)", after.Hits, before.Hits)
	}
}

// TestWarmStartDeterministicOptIn: warm start is a pure function of
// (options, store content) — identical warm runs agree — and records
// land in the store's result index so later searches can seed from them.
func TestWarmStartDeterministicOptIn(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	store := NewAnalysisStore()
	seedOpts := Options{Budget: 400, Seed: 11, SharedCache: store}
	prior, err := Optimize(model, EdgePlatform(), seedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().Results == 0 {
		t.Fatal("completed search not recorded in the result index")
	}

	warmOpts := Options{Budget: 300, Seed: 13, SharedCache: store, WarmStart: true}
	a, err := Optimize(model, EdgePlatform(), warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(model, EdgePlatform(), warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != b.Fitness || a.Cycles != b.Cycles {
		t.Errorf("warm start not deterministic: %.12e vs %.12e", a.Fitness, b.Fitness)
	}
	// The warm seed is the prior's repaired best; the warm search starts
	// from at least that quality, so it must never end up worse than the
	// prior it seeded from (same model, platform, objective).
	if a.Fitness > prior.Fitness {
		t.Errorf("warm run (%.12e) worse than its seed (%.12e)", a.Fitness, prior.Fitness)
	}
}

// TestWarmStartChangesTrajectory documents why WarmStart is opt-in and
// dedup-hashed: unlike pure cache sharing, it perturbs the search.
func TestWarmStartChangesTrajectory(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	store := NewAnalysisStore()
	if _, err := Optimize(model, EdgePlatform(), Options{Budget: 400, Seed: 11, SharedCache: store}); err != nil {
		t.Fatal(err)
	}
	cold, err := Optimize(model, EdgePlatform(), Options{Budget: 300, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Optimize(model, EdgePlatform(), Options{
		Budget: 300, Seed: 13, SharedCache: store, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Fitness == warm.Fitness && cold.Cycles == warm.Cycles &&
		cold.Genome.NumPEs() == warm.Genome.NumPEs() {
		t.Logf("warm and cold runs coincided (possible but unexpected); fitness %.12e", warm.Fitness)
	}
}
