package digamma

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestParseModelCSVFacade(t *testing.T) {
	src := "name,type,K,C,Y,X,R,S,strideY,strideX,count\nl1,CONV,16,8,8,8,3,3,1,1,1\n"
	m, err := ParseModelCSV("custom", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 1 || m.Layers[0].K != 16 {
		t.Errorf("parsed %+v", m.Layers)
	}
	var buf bytes.Buffer
	if err := WriteModelCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ParseModelCSV("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MACs() != m.MACs() {
		t.Error("CSV round trip changed the model")
	}
}

func TestLoadModelCSVFileMissing(t *testing.T) {
	if _, err := LoadModelCSVFile("/nonexistent/model.csv"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOptimizeMultiFacade(t *testing.T) {
	m1, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel("dlrm")
	if err != nil {
		t.Fatal(err)
	}
	best, err := OptimizeMulti([]Model{m1, m2}, []float64{1, 2}, EdgePlatform(),
		Options{Budget: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Valid {
		t.Error("no valid joint design")
	}
	// Layers of both models must be present in the evaluation.
	names := ""
	for _, le := range best.Layers {
		names += le.Layer.Name + " "
	}
	if !strings.Contains(names, "ncf/") || !strings.Contains(names, "dlrm/") {
		t.Errorf("joint evaluation covers: %s", names)
	}
}

func TestTuneFacade(t *testing.T) {
	m, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Tune(m, EdgePlatform(), Latency, TuneOptions{Trials: 5, BudgetPerTrial: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PopSize < 4 {
		t.Errorf("tuned config: %+v", cfg)
	}
}

func TestWriteReportFacade(t *testing.T) {
	m, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	best, err := Optimize(m, EdgePlatform(), Options{Budget: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, best); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"hardware"`, `"cycles"`, `"mapping"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %s", want)
		}
	}
}

func TestParetoFrontFacade(t *testing.T) {
	m, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoFront(m, EdgePlatform(),
		[]Objective{Latency, Energy}, Options{Budget: 400, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for _, ev := range front {
		if !ev.Valid {
			t.Error("invalid front member")
		}
	}
}

func TestLoadModelCSVFileRoundTrip(t *testing.T) {
	m, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ncf.csv"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteModelCSV(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModelCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.MACs() != m.MACs() {
		t.Error("file round trip changed the model")
	}
}

func TestOptimizeMultiWithBaselineAlgorithm(t *testing.T) {
	m1, _ := LoadModel("ncf")
	m2, _ := LoadModel("dlrm")
	best, err := OptimizeMulti([]Model{m1, m2}, nil, EdgePlatform(),
		Options{Budget: 200, Seed: 4, Algorithm: "DE"})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("nil evaluation")
	}
}
