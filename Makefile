# DiGamma reproduction — build / test / benchmark entry points.

GO ?= go

.PHONY: all build vet test race check bench bench-smoke loadgen clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/evalcache/ ./internal/par/ ./internal/coopt/ ./internal/core/ ./internal/figures/ ./internal/serve/

# loadgen fires concurrent mixed requests at an in-process digammad and
# reports throughput + dedup hit rate (REQUESTS/CLIENTS/BUDGET/TARGET env
# knobs; see scripts/loadgen.sh).
loadgen:
	./scripts/loadgen.sh

# check is the CI gate: everything tier-1 plus a one-iteration benchmark
# smoke so the figure pipelines stay runnable.
check: vet build test bench-smoke

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

# bench records the core benchmark trajectory into BENCH_core.json
# (ns/op, B/op, allocs/op per benchmark) for cross-PR comparison.
bench:
	./scripts/bench.sh

clean:
	rm -f BENCH_core.json
