package digamma

import (
	"testing"
)

func TestLoadModelZoo(t *testing.T) {
	if len(ModelNames) != 7 {
		t.Fatalf("zoo has %d models", len(ModelNames))
	}
	for _, n := range ModelNames {
		m, err := LoadModel(n)
		if err != nil {
			t.Errorf("LoadModel(%s): %v", n, err)
		}
		if m.MACs() <= 0 {
			t.Errorf("%s has no MACs", n)
		}
	}
	if _, err := LoadModel("lenet"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestPlatforms(t *testing.T) {
	e, c := EdgePlatform(), CloudPlatform()
	if e.AreaBudgetMM2 != 0.2 || c.AreaBudgetMM2 != 7.0 {
		t.Errorf("budgets = %g / %g, want 0.2 / 7.0", e.AreaBudgetMM2, c.AreaBudgetMM2)
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 9 || algs[len(algs)-1] != "DiGamma" {
		t.Errorf("Algorithms = %v", algs)
	}
}

func TestOptimizeQuick(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	best, err := Optimize(model, EdgePlatform(), Options{Budget: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Valid {
		t.Fatal("no valid design")
	}
	if !EdgePlatform().Fits(best.HW) {
		t.Error("design exceeds budget")
	}
	if best.Cycles <= 0 {
		t.Error("no latency")
	}
}

func TestOptimizeWithBaselineAlgorithm(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	best, err := Optimize(model, EdgePlatform(), Options{Budget: 300, Seed: 2, Algorithm: "DE"})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("nil evaluation")
	}
	if _, err := Optimize(model, EdgePlatform(), Options{Budget: 10, Algorithm: "Annealing"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestOptimizeMappingFixedHW(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	hw := HW{Fanouts: []int{16, 8}, BufBytes: []int64{4 << 10, 512 << 10}}
	best, err := OptimizeMapping(model, EdgePlatform(), hw, Options{Budget: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if best.HW.Fanouts[0] != 16 || best.HW.Fanouts[1] != 8 {
		t.Errorf("fixed HW changed: %v", best.HW.Fanouts)
	}
}

func TestObjectiveSelection(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	lat, err := Optimize(model, EdgePlatform(), Options{Budget: 200, Seed: 4, Objective: Latency})
	if err != nil {
		t.Fatal(err)
	}
	edp, err := Optimize(model, EdgePlatform(), Options{Budget: 200, Seed: 4, Objective: EDP})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Fitness == edp.Fitness && lat.Valid && edp.Valid {
		t.Log("latency and EDP fitness coincide on this run (possible but unusual)")
	}
}

func TestNewProblemExposed(t *testing.T) {
	model, err := LoadModel("ncf")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(model, EdgePlatform(), Latency)
	if err != nil {
		t.Fatal(err)
	}
	if p.Space.Dim() <= 0 {
		t.Error("empty search space")
	}
}
